//! Content-addressed response memo: an LRU keyed by the request's
//! [`cache_key`](crate::protocol::cache_key) holding fully rendered
//! result strings under a byte budget.
//!
//! The list is woven through a slab of slots (index links, no pointer
//! chasing, no unsafe): `head` is most recently used, `tail` is the
//! eviction candidate. Accounting charges each entry its value length
//! plus a fixed per-slot overhead so a flood of tiny responses cannot
//! grow the map without bound.

use std::collections::HashMap;

const NIL: usize = usize::MAX;
/// Fixed accounting overhead charged per cached entry (slot + map
/// bookkeeping), on top of the value bytes.
const SLOT_OVERHEAD: usize = 64;

#[derive(Debug)]
struct Slot {
    key: u64,
    value: String,
    prev: usize,
    next: usize,
}

/// A byte-budgeted LRU of rendered responses.
#[derive(Debug)]
pub struct ResponseCache {
    budget: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResponseCache {
    /// An empty cache with the given byte budget. A zero budget caches
    /// nothing (every `get` misses, every `insert` is dropped).
    pub fn new(budget: usize) -> Self {
        ResponseCache {
            budget,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn cost(value: &str) -> usize {
        value.len() + SLOT_OVERHEAD
    }

    /// True when `key` is resident, with no side effects: recency,
    /// hit and miss accounting are all untouched. The poll loop uses
    /// this to decide whether a request is a probable memo hit worth
    /// running inline on the event thread.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Looks a response up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&str> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(&self.slots[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a response, evicting least-recently-used
    /// entries until the budget holds. Values costing more than the
    /// whole budget are dropped rather than cached.
    pub fn insert(&mut self, key: u64, value: String) {
        if Self::cost(&value) > self.budget {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.bytes -= Self::cost(&self.slots[i].value);
            self.bytes += Self::cost(&value);
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
        } else {
            self.bytes += Self::cost(&value);
            let slot = Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            };
            let i = match self.free.pop() {
                Some(i) => {
                    self.slots[i] = slot;
                    i
                }
                None => {
                    self.slots.push(slot);
                    self.slots.len() - 1
                }
            };
            self.map.insert(key, i);
            self.push_front(i);
        }
        while self.bytes > self.budget {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "over budget with an empty list");
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.bytes -= Self::cost(&self.slots[victim].value);
            self.slots[victim].value = String::new();
            self.free.push(victim);
            self.evictions += 1;
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accounted bytes currently held (values + per-slot overhead).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries pushed out by the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_refresh() {
        let mut c = ResponseCache::new(1 << 16);
        assert!(c.get(1).is_none());
        c.insert(1, "one".into());
        c.insert(2, "two".into());
        assert_eq!(c.get(1), Some("one"));
        assert_eq!(c.len(), 2);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Refreshing a key replaces its value without growing the map.
        c.insert(1, "uno".into());
        assert_eq!(c.get(1), Some("uno"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used_under_byte_pressure() {
        // Room for exactly two entries of cost 100+64.
        let mut c = ResponseCache::new(2 * (100 + 64));
        let big = "x".repeat(100);
        c.insert(1, big.clone());
        c.insert(2, big.clone());
        assert_eq!(c.get(1).map(str::len), Some(100)); // 1 is now MRU
        c.insert(3, big.clone());
        assert_eq!(c.evictions(), 1);
        assert!(c.get(2).is_none(), "LRU key 2 evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert!(c.bytes() <= c.budget());
    }

    #[test]
    fn oversized_values_and_zero_budget_are_dropped() {
        let mut c = ResponseCache::new(32);
        c.insert(1, "y".repeat(1000));
        assert!(c.is_empty());
        let mut z = ResponseCache::new(0);
        z.insert(1, String::new());
        assert!(z.is_empty());
        assert!(z.get(1).is_none());
    }

    #[test]
    fn prop_bytes_accounting_matches_contents() {
        // Mirror the cache with an explicit MRU-front list and check
        // after every operation that `bytes()` equals the sum of entry
        // costs — the invariant the budget loop relies on. The budget
        // holds only a few entries, so inserts, refreshes (including
        // refresh-to-larger, which must evict *other* entries), hits,
        // misses, over-budget drops and evictions all interleave.
        lim_testkit::prop::check("cache_bytes_accounting", |rng| {
            let budget = 3 * (32 + SLOT_OVERHEAD);
            let mut c = ResponseCache::new(budget);
            let mut model: Vec<(u64, String)> = Vec::new();
            for _ in 0..200 {
                let key = rng.next_u64() % 8;
                if rng.next_u64() % 3 < 2 {
                    let len = (rng.next_u64() % 280) as usize;
                    let value = "v".repeat(len);
                    c.insert(key, value.clone());
                    // Values costing more than the whole budget are
                    // dropped and leave any previous entry untouched.
                    if ResponseCache::cost(&value) <= budget {
                        model.retain(|(k, _)| *k != key);
                        model.insert(0, (key, value));
                        let mut total: usize =
                            model.iter().map(|(_, v)| ResponseCache::cost(v)).sum();
                        while total > budget {
                            let (_, v) = model.pop().expect("over budget implies entries");
                            total -= ResponseCache::cost(&v);
                        }
                    }
                } else {
                    let got = c.get(key).map(str::to_owned);
                    match model.iter().position(|(k, _)| *k == key) {
                        Some(p) => {
                            let entry = model.remove(p);
                            assert_eq!(got.as_deref(), Some(entry.1.as_str()));
                            model.insert(0, entry);
                        }
                        None => assert!(got.is_none()),
                    }
                }
                let want: usize = model.iter().map(|(_, v)| ResponseCache::cost(v)).sum();
                assert_eq!(c.bytes(), want, "bytes() must equal the sum of entry costs");
                assert_eq!(c.len(), model.len());
                assert!(c.bytes() <= budget);
            }
        });
    }

    #[test]
    fn slots_are_recycled_after_eviction() {
        let mut c = ResponseCache::new(100 + 64);
        for key in 0..50 {
            c.insert(key, "x".repeat(100));
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 49);
        assert!(c.slots.len() <= 2, "evicted slots must be reused");
        assert_eq!(c.get(49).map(str::len), Some(100));
    }
}
