//! `lim-router`: a thin consistent-hashing front for a cluster of
//! `lim-serve` shards.
//!
//! Each request is placed on a shard by hashing its routing key
//! ([`crate::ring::route_key`]) onto the [`HashRing`], so all stack
//! heights of one brick land on the shard that already compiled it and
//! repeats of any request land on the shard whose memo holds it. Single
//! requests are forwarded as raw line bytes and the shard's response is
//! relayed verbatim — byte-identity with a single-shard deployment is
//! structural, not re-rendered. `batch` requests are scattered: entries
//! are grouped by shard, each group travels as one sub-batch (so the
//! per-shard multi-RHS golden panel sharing is preserved), and the
//! groups' result arrays are re-gathered in original entry order by raw
//! byte splicing, never by re-rendering.
//!
//! The router itself stays thread-per-connection: its clients are a
//! handful of load generators and front ends, not the thousands of idle
//! end-user connections the shards' poll loop absorbs, and each client
//! connection needs its own upstream sockets anyway. Limits: client
//! trace ids are not propagated through a *scattered* batch (they are
//! through every other request, including single-shard batches), and a
//! shard failing mid-scatter fails the whole batch with a 502.
//!
//! `server.shutdown` broadcasts to every shard (best-effort) before
//! draining the router itself; `server.stats` answers from the router
//! with shard addresses and forwarding counters rather than proxying
//! one shard's view.

use crate::net::{write_line, LineReader};
use crate::protocol::{cache_key, error_line, ok_line, Request, ServeError, PROTOCOL};
use crate::ring::{route_key, HashRing};
use lim_obs::json::{self, Value};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

const ACCEPT_POLL: Duration = Duration::from_millis(5);
const READ_POLL: Duration = Duration::from_millis(100);

/// A bound, not-yet-running router.
#[derive(Debug)]
pub struct Router {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<RouterShared>,
}

#[derive(Debug)]
struct RouterShared {
    shards: Vec<String>,
    ring: HashRing,
    shutdown: AtomicBool,
    started: Instant,
    forwarded: AtomicU64,
    scattered: AtomicU64,
    errors: AtomicU64,
}

impl Router {
    /// Binds to `addr` routing across `shards` (shard addresses,
    /// `host:port`).
    ///
    /// # Errors
    ///
    /// Fails on an empty shard list or a bind failure.
    pub fn bind<S: AsRef<str>>(addr: &str, shards: &[S]) -> io::Result<Router> {
        if shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shards: Vec<String> = shards.iter().map(|s| s.as_ref().to_string()).collect();
        let ring = HashRing::new(&shards);
        Ok(Router {
            listener,
            addr,
            shared: Arc::new(RouterShared {
                shards,
                ring,
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                forwarded: AtomicU64::new(0),
                scattered: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the accept loop until shutdown, then drains client
    /// connections.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket failures.
    pub fn run(self) -> io::Result<()> {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        while !self.shared.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    workers.push(thread::spawn(move || {
                        let _ = handle_client(stream, &shared);
                    }));
                    workers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in workers {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Runs the router on a background thread.
    pub fn spawn(self) -> RouterHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let join = thread::spawn(move || self.run());
        RouterHandle { addr, shared, join }
    }
}

/// Control handle for a router running on a background thread.
#[derive(Debug)]
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    join: JoinHandle<io::Result<()>>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown of the router (not the shards) and waits for
    /// the drain.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's exit status.
    pub fn shutdown_and_join(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::Release);
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("router thread panicked")),
        }
    }
}

/// One lazily opened upstream connection to a shard. A connection is
/// request-response serial, which matches the per-client serial read
/// loop feeding it.
#[derive(Debug)]
struct Upstream {
    writer: TcpStream,
    reader: LineReader,
}

impl Upstream {
    fn connect(addr: &str) -> io::Result<Upstream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Upstream {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw request line and reads one raw response line.
    fn call(&mut self, line: &str) -> io::Result<String> {
        write_line(&mut self.writer, line)?;
        match self.reader.read_line(&|| false)? {
            Some(resp) => Ok(resp),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "shard closed the connection mid-request",
            )),
        }
    }
}

/// The per-client state: one upstream slot per shard, opened on first
/// use so a client that only ever hits one brick key holds one socket.
struct ClientConns {
    upstreams: Vec<Option<Upstream>>,
}

impl ClientConns {
    fn with_upstream<R>(
        &mut self,
        shared: &RouterShared,
        shard: usize,
        f: impl FnOnce(&mut Upstream) -> io::Result<R>,
    ) -> Result<R, ServeError> {
        let addr = &shared.shards[shard];
        let slot = &mut self.upstreams[shard];
        if slot.is_none() {
            *slot = Some(Upstream::connect(addr).map_err(|e| {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                ServeError::bad_gateway(format!("shard {addr} unreachable: {e}"))
            })?);
        }
        let upstream = slot.as_mut().expect("upstream just ensured");
        match f(upstream) {
            Ok(r) => Ok(r),
            Err(e) => {
                // A failed upstream is dropped so the next request
                // reconnects instead of reusing a dead socket.
                *slot = None;
                shared.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::bad_gateway(format!("shard {addr} failed: {e}")))
            }
        }
    }
}

fn handle_client(stream: TcpStream, shared: &RouterShared) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader::new(stream);
    let mut conns = ClientConns {
        upstreams: (0..shared.shards.len()).map(|_| None).collect(),
    };
    let stop = || shared.shutdown.load(Ordering::Acquire);
    while let Some(line) = reader.read_line(&stop)? {
        if line.trim().is_empty() {
            continue;
        }
        let response = route(&line, shared, &mut conns);
        write_line(&mut writer, &response)?;
        if stop() {
            break;
        }
    }
    Ok(())
}

/// Produces the response line for one client line.
fn route(line: &str, shared: &RouterShared, conns: &mut ClientConns) -> String {
    let rq = match Request::parse(line) {
        Ok(rq) => rq,
        Err(e) => return error_line(&Value::Null, &e),
    };
    match rq.method.as_str() {
        "server.shutdown" => {
            // Best-effort broadcast on fresh sockets (the per-client
            // upstreams may be parked mid-drain on other shards).
            for addr in &shared.shards {
                if let Ok(mut up) = Upstream::connect(addr) {
                    let _ = up.call("{\"id\":0,\"method\":\"server.shutdown\"}");
                }
            }
            shared.shutdown.store(true, Ordering::Release);
            ok_line(&rq.id, false, "{\"draining\":true}")
        }
        "server.stats" => ok_line(&rq.id, false, &json::render(&stats_value(shared))),
        "batch" => scatter_batch(line, &rq, shared, conns),
        _ => {
            let shard = shared.ring.shard_for(route_key(&rq.method, &rq.params));
            shared.forwarded.fetch_add(1, Ordering::Relaxed);
            match conns.with_upstream(shared, shard, |up| up.call(line)) {
                Ok(resp) => resp,
                Err(e) => error_line(&rq.id, &e),
            }
        }
    }
}

/// Scatters a `batch` across shards and gathers the result arrays back
/// in original entry order.
///
/// Entry validation is left to the shards: any batch whose shape the
/// router cannot route (malformed entries, nested batch, over-long) is
/// forwarded whole to one shard so the error bytes are the shard's
/// canonical ones. A batch whose entries all route to one shard is
/// likewise forwarded verbatim — that path also preserves trace
/// propagation and whole-batch memo behavior exactly.
fn scatter_batch(
    line: &str,
    rq: &Request,
    shared: &RouterShared,
    conns: &mut ClientConns,
) -> String {
    let fallback_shard = shared.ring.shard_for(cache_key("batch", &rq.params));
    let forward_whole = |shard: usize, conns: &mut ClientConns| {
        shared.forwarded.fetch_add(1, Ordering::Relaxed);
        match conns.with_upstream(shared, shard, |up| up.call(line)) {
            Ok(resp) => resp,
            Err(e) => error_line(&rq.id, &e),
        }
    };
    let Some(Value::Array(requests)) = rq.params.get("requests") else {
        return forward_whole(fallback_shard, conns);
    };
    let mut targets = Vec::with_capacity(requests.len());
    for entry in requests {
        let (Some(Value::String(method)), params) = (entry.get("method"), entry.get("params"))
        else {
            return forward_whole(fallback_shard, conns);
        };
        if method == "batch" || requests.len() > 1024 {
            return forward_whole(fallback_shard, conns);
        }
        let empty = Value::Object(Vec::new());
        let params = match params {
            None => &empty,
            Some(p @ Value::Object(_)) => p,
            Some(_) => return forward_whole(fallback_shard, conns),
        };
        targets.push(shared.ring.shard_for(route_key(method, params)));
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shared.shards.len()];
    for (i, &shard) in targets.iter().enumerate() {
        groups[shard].push(i);
    }
    let busy: Vec<usize> = (0..groups.len())
        .filter(|&s| !groups[s].is_empty())
        .collect();
    if busy.len() <= 1 {
        return forward_whole(busy.first().copied().unwrap_or(fallback_shard), conns);
    }
    shared.scattered.fetch_add(1, Ordering::Relaxed);

    // Scatter: each involved shard gets one sub-batch carrying its
    // entries verbatim (re-rendered request-side only; responses are
    // never re-rendered). Sub-batches run concurrently on borrowed
    // upstream slots.
    let mut calls: Vec<(usize, String, Option<Upstream>)> = busy
        .iter()
        .map(|&shard| {
            let entries: Vec<String> = groups[shard]
                .iter()
                .map(|&i| json::render(&requests[i]))
                .collect();
            let sub = format!(
                "{{\"id\":0,\"method\":\"batch\",\"params\":{{\"requests\":[{}]}}}}",
                entries.join(",")
            );
            (shard, sub, conns.upstreams[shard].take())
        })
        .collect();
    let results: Vec<io::Result<String>> = thread::scope(|scope| {
        let handles: Vec<_> = calls
            .iter_mut()
            .map(|(shard, sub, slot)| {
                let addr = &shared.shards[*shard];
                scope.spawn(move || {
                    if slot.is_none() {
                        *slot = Some(Upstream::connect(addr)?);
                    }
                    slot.as_mut().expect("upstream just ensured").call(sub)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(io::Error::other("scatter thread panicked")))
            })
            .collect()
    });
    // Return the borrowed sockets (dropping any whose call failed).
    let mut failed: Option<ServeError> = None;
    let mut gathered: Vec<(usize, String)> = Vec::with_capacity(results.len());
    for ((shard, _sub, slot), result) in calls.into_iter().zip(results) {
        match result {
            Ok(resp) => {
                conns.upstreams[shard] = slot;
                gathered.push((shard, resp));
            }
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let addr = &shared.shards[shard];
                failed
                    .get_or_insert(ServeError::bad_gateway(format!("shard {addr} failed: {e}")));
            }
        }
    }
    if let Some(e) = failed {
        return error_line(&rq.id, &e);
    }

    // Gather: splice each shard's result array back into original entry
    // order without touching the entry bytes.
    let mut slots: Vec<Option<&str>> = vec![None; requests.len()];
    let mut shard_entries: Vec<(usize, Vec<&str>)> = Vec::with_capacity(gathered.len());
    for (shard, resp) in &gathered {
        let Some(entries) = batch_results_slice(resp).map(split_top_level) else {
            // The shard answered with an error line (e.g. it shed the
            // sub-batch); relay its code and message under our id.
            let err = match Value::parse(resp).ok().as_ref().and_then(shard_error) {
                Some(err) => err,
                None => ServeError::bad_gateway(format!(
                    "shard {} returned an unparseable batch response",
                    shared.shards[*shard]
                )),
            };
            return error_line(&rq.id, &err);
        };
        shard_entries.push((*shard, entries));
    }
    for (shard, entries) in shard_entries {
        if entries.len() != groups[shard].len() {
            return error_line(
                &rq.id,
                &ServeError::bad_gateway(format!(
                    "shard {} returned {} results for {} entries",
                    shared.shards[shard],
                    entries.len(),
                    groups[shard].len()
                )),
            );
        }
        for (&i, entry) in groups[shard].iter().zip(entries) {
            slots[i] = Some(entry);
        }
    }
    let joined: Vec<&str> = slots
        .into_iter()
        .map(|s| s.expect("every entry was grouped onto some shard"))
        .collect();
    ok_line(
        &rq.id,
        false,
        &format!("{{\"results\":[{}]}}", joined.join(",")),
    )
}

/// Extracts the raw contents of the `results` array from one shard's
/// successful batch response, exploiting the service's fixed rendering
/// (`…,"result":{"results":[ … ]}}`). `None` for error responses.
fn batch_results_slice(resp: &str) -> Option<&str> {
    let result = crate::protocol::result_slice(resp)?;
    result
        .strip_prefix("{\"results\":[")?
        .strip_suffix("]}")
}

/// Pulls the `error` member off a parsed shard response.
fn shard_error(resp: &Value) -> Option<ServeError> {
    let err = resp.get("error")?;
    Some(ServeError {
        code: err.get("code")?.as_f64()? as u32,
        message: err.get("message")?.as_str()?.to_string(),
    })
}

/// Splits the interior of a JSON array into its top-level elements
/// without parsing them: tracks brace/bracket depth and string state so
/// commas inside nested values or strings don't split. The input is
/// trusted shard output, so this never validates, only scans.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    if s.is_empty() {
        return parts;
    }
    let bytes = s.as_bytes();
    let (mut depth, mut start) = (0usize, 0usize);
    let (mut in_string, mut escaped) = (false, false);
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Router-level statistics (the router does not proxy shard stats; ask
/// a shard directly for its own view).
fn stats_value(shared: &RouterShared) -> Value {
    Value::Object(vec![
        ("router".to_owned(), Value::Bool(true)),
        ("protocol".to_owned(), Value::String(PROTOCOL.into())),
        (
            "uptime_ms".to_owned(),
            Value::Number(shared.started.elapsed().as_millis() as f64),
        ),
        (
            "shards".to_owned(),
            Value::Array(
                shared
                    .shards
                    .iter()
                    .map(|s| Value::String(s.clone()))
                    .collect(),
            ),
        ),
        (
            "forwarded".to_owned(),
            Value::Number(shared.forwarded.load(Ordering::Relaxed) as f64),
        ),
        (
            "scattered".to_owned(),
            Value::Number(shared.scattered.load(Ordering::Relaxed) as f64),
        ),
        (
            "errors".to_owned(),
            Value::Number(shared.errors.load(Ordering::Relaxed) as f64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_top_level_respects_nesting_and_strings() {
        assert_eq!(split_top_level(""), Vec::<&str>::new());
        assert_eq!(split_top_level("{\"a\":1}"), vec!["{\"a\":1}"]);
        assert_eq!(
            split_top_level("{\"a\":[1,2]},{\"b\":\"x,y\"},{\"c\":{\"d\":3}}"),
            vec!["{\"a\":[1,2]}", "{\"b\":\"x,y\"}", "{\"c\":{\"d\":3}}"]
        );
        // Escaped quotes inside strings don't end the string.
        assert_eq!(
            split_top_level(r#"{"m":"a\",b"},{"n":2}"#),
            vec![r#"{"m":"a\",b"}"#, r#"{"n":2}"#]
        );
    }

    #[test]
    fn batch_results_slice_matches_service_rendering() {
        let resp = "{\"id\":4,\"ok\":true,\"cached\":false,\"result\":{\"results\":[{\"ok\":true,\"cached\":false,\"result\":{\"x\":1}},{\"ok\":false,\"error\":{\"code\":404,\"message\":\"m\"}}]}}";
        let inner = batch_results_slice(resp).unwrap();
        let entries = split_top_level(inner);
        assert_eq!(entries.len(), 2);
        assert!(entries[0].starts_with("{\"ok\":true"));
        assert!(entries[1].starts_with("{\"ok\":false"));
        // Error responses never slice.
        assert_eq!(
            batch_results_slice("{\"id\":1,\"ok\":false,\"error\":{\"code\":429,\"message\":\"m\"}}"),
            None
        );
    }

    #[test]
    fn bind_rejects_an_empty_shard_list() {
        let shards: [&str; 0] = [];
        assert!(Router::bind("127.0.0.1:0", &shards).is_err());
    }
}
