//! Cluster-mode integration: a `lim-router` over two in-process shards
//! must be indistinguishable on the wire — byte for byte — from one
//! fresh shard answering alone, for single requests and for scattered
//! `batch` requests alike.

use lim_obs::json::Value;
use lim_serve::net::{write_line, LineReader};
use lim_serve::router::Router;
use lim_serve::{ServeConfig, Server};
use std::net::TcpStream;

fn config() -> ServeConfig {
    ServeConfig {
        max_in_flight: 4,
        cache_bytes: 1 << 20,
        ..ServeConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, LineReader) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let reader = LineReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(
    writer: &mut TcpStream,
    reader: &mut LineReader,
    id: usize,
    method: &str,
    params: &str,
) -> String {
    write_line(
        writer,
        &format!("{{\"id\":{id},\"method\":\"{method}\",\"params\":{params}}}"),
    )
    .expect("request written");
    reader
        .read_line(&|| false)
        .expect("socket read")
        .expect("one response line")
}

/// Distinct requests only: within one cold run every response is
/// `cached:false` on a single shard and on every routed shard alike,
/// so the byte-identity comparison is exact. (Repeats would also
/// agree — the ring sends a repeated key to the same shard — but
/// distinct entries keep the reasoning trivial.)
const SINGLES: &[(&str, &str)] = &[
    ("server.ping", "{}"),
    ("brick.estimate", "{\"words\":16,\"bits\":10,\"stack\":4}"),
    ("brick.estimate", "{\"words\":64,\"bits\":12,\"stack\":2}"),
    (
        "brick.estimate",
        "{\"words\":32,\"bits\":8,\"stack\":1,\"bitcell\":\"6t\"}",
    ),
    ("golden.compare", "{\"words\":16,\"bits\":10,\"stack\":2}"),
    (
        "dse.explore",
        "{\"memories\":[[128,8],[128,16]],\"brick_words\":[16,32]}",
    ),
];

/// A batch mixing ok entries, an unknown method and a bad spec: the
/// router must scatter it across shards and gather a response line
/// byte-identical to a lone shard's, errors in place included.
const BATCH_PARAMS: &str = "{\"requests\":[\
    {\"method\":\"server.ping\"},\
    {\"method\":\"brick.estimate\",\"params\":{\"words\":24,\"bits\":9,\"stack\":2}},\
    {\"method\":\"golden.compare\",\"params\":{\"words\":40,\"bits\":8,\"stack\":2}},\
    {\"method\":\"golden.compare\",\"params\":{\"words\":48,\"bits\":8,\"stack\":2}},\
    {\"method\":\"no.such_method\"},\
    {\"method\":\"brick.estimate\",\"params\":{\"words\":0,\"bits\":9}},\
    {\"method\":\"brick.estimate\",\"params\":{\"words\":128,\"bits\":12,\"stack\":4}}\
    ]}";

#[test]
fn router_over_two_shards_is_byte_identical_to_one_shard() {
    let shard1 = Server::bind("127.0.0.1:0", &config()).expect("bind shard 1");
    let shard2 = Server::bind("127.0.0.1:0", &config()).expect("bind shard 2");
    let shard_addrs = [
        shard1.local_addr().to_string(),
        shard2.local_addr().to_string(),
    ];
    let h1 = shard1.spawn();
    let h2 = shard2.spawn();
    let router = Router::bind("127.0.0.1:0", &shard_addrs).expect("bind router");
    let router_addr = router.local_addr();
    let rh = router.spawn();

    // The reference: one fresh shard, same config, seeing the same
    // request sequence alone.
    let single = Server::bind("127.0.0.1:0", &config()).expect("bind single shard");
    let single_addr = single.local_addr();
    let sh = single.spawn();

    let (mut rw, mut rr) = connect(router_addr);
    let (mut sw, mut sr) = connect(single_addr);

    for (i, (method, params)) in SINGLES.iter().enumerate() {
        let routed = roundtrip(&mut rw, &mut rr, i, method, params);
        let direct = roundtrip(&mut sw, &mut sr, i, method, params);
        assert_eq!(routed, direct, "{method} differs through the router");
    }

    let routed = roundtrip(&mut rw, &mut rr, 100, "batch", BATCH_PARAMS);
    let direct = roundtrip(&mut sw, &mut sr, 100, "batch", BATCH_PARAMS);
    assert_eq!(routed, direct, "scattered batch differs from lone shard");
    // Sanity on the shared content: ok entries and in-place errors.
    let v = Value::parse(&routed).expect("batch response parses");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{routed}");
    let results = v
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Value::as_array)
        .expect("results array");
    assert_eq!(results.len(), 7);
    assert_eq!(results[4].get("ok"), Some(&Value::Bool(false)), "{routed}");
    assert_eq!(results[5].get("ok"), Some(&Value::Bool(false)), "{routed}");
    assert_eq!(results[6].get("ok"), Some(&Value::Bool(true)), "{routed}");

    // Both shards did real work: the scatter actually spread load.
    let stats = roundtrip(&mut rw, &mut rr, 101, "server.stats", "{}");
    let v = Value::parse(&stats).expect("router stats parse");
    let result = v.get("result").expect("router stats result");
    assert_eq!(
        result.get("router"),
        Some(&Value::Bool(true)),
        "router identifies itself: {stats}"
    );
    let shards = result
        .get("shards")
        .and_then(Value::as_array)
        .expect("shards array");
    assert_eq!(shards.len(), 2);
    let scattered = result
        .get("scattered")
        .and_then(Value::as_f64)
        .expect("scattered counter");
    assert!(scattered >= 1.0, "batch was not scattered: {stats}");

    // server.shutdown through the router broadcasts to every shard and
    // then drains the router itself.
    let bye = roundtrip(&mut rw, &mut rr, 102, "server.shutdown", "{}");
    assert!(bye.contains("\"draining\":true"), "{bye}");
    rh.shutdown_and_join().expect("router drains");
    h1.shutdown_and_join().expect("shard 1 drains");
    h2.shutdown_and_join().expect("shard 2 drains");
    sh.shutdown_and_join().expect("single shard drains");
}

#[test]
fn routed_repeats_hit_one_shards_memo() {
    // The ring pins a request key to one shard, so the second send of
    // the same request must come back cached:true — shared-nothing
    // shards still give cluster-wide memo behavior for repeats.
    let shard1 = Server::bind("127.0.0.1:0", &config()).expect("bind shard 1");
    let shard2 = Server::bind("127.0.0.1:0", &config()).expect("bind shard 2");
    let shard_addrs = [
        shard1.local_addr().to_string(),
        shard2.local_addr().to_string(),
    ];
    let h1 = shard1.spawn();
    let h2 = shard2.spawn();
    let router = Router::bind("127.0.0.1:0", &shard_addrs).expect("bind router");
    let router_addr = router.local_addr();
    let rh = router.spawn();

    let (mut w, mut r) = connect(router_addr);
    let params = "{\"words\":56,\"bits\":11,\"stack\":2}";
    let first = roundtrip(&mut w, &mut r, 0, "golden.compare", params);
    assert!(first.contains("\"cached\":false"), "{first}");
    let second = roundtrip(&mut w, &mut r, 0, "golden.compare", params);
    assert_eq!(
        second,
        first.replace("\"cached\":false", "\"cached\":true"),
        "repeat must hit the owning shard's memo"
    );

    rh.shutdown_and_join().expect("router drains");
    h1.shutdown_and_join().expect("shard 1 drains");
    h2.shutdown_and_join().expect("shard 2 drains");
}
