//! End-to-end smoke test: a real TCP server on an ephemeral port under
//! mixed multi-threaded traffic, checked byte-for-byte against direct
//! in-process library calls.

use lim_obs::json::Value;
use lim_serve::net::{write_line, LineReader, MAX_LINE_BYTES};
use lim_serve::protocol::{result_slice, ERR_BAD_REQUEST, ERR_OVERLOADED};
use lim_serve::{ServeConfig, Server, Service};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn connect(addr: std::net::SocketAddr) -> (TcpStream, LineReader) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let reader = LineReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(
    writer: &mut TcpStream,
    reader: &mut LineReader,
    id: usize,
    method: &str,
    params: &str,
) -> String {
    write_line(
        writer,
        &format!("{{\"id\":{id},\"method\":\"{method}\",\"params\":{params}}}"),
    )
    .expect("request written");
    reader
        .read_line(&|| false)
        .expect("socket read")
        .expect("one response line")
}

/// The mixed workload: every serving endpoint, several spec shapes.
const TRAFFIC: &[(&str, &str)] = &[
    ("brick.estimate", "{\"words\":16,\"bits\":10,\"stack\":4}"),
    (
        "brick.estimate",
        "{\"words\":32,\"bits\":12,\"stack\":2,\"bitcell\":\"6t\"}",
    ),
    ("golden.compare", "{\"words\":16,\"bits\":10,\"stack\":2}"),
    (
        "flow.run",
        "{\"words\":32,\"bits\":10,\"partitions\":1,\"brick_words\":16}",
    ),
    (
        "dse.explore",
        "{\"memories\":[[128,8],[128,16]],\"brick_words\":[16,32]}",
    ),
    (
        "batch",
        "{\"requests\":[{\"method\":\"server.ping\"},\
         {\"method\":\"brick.estimate\",\"params\":{\"words\":16,\"bits\":10,\"stack\":4}}]}",
    ),
    ("server.ping", "{}"),
];

#[test]
fn concurrent_traffic_matches_direct_calls_and_warms_caches() {
    // The daemon binary enables obs itself; in-process servers inherit
    // the ambient flag, so turn collection on for the adoption check.
    lim_obs::set_enabled(true);
    let server = Server::bind(
        "127.0.0.1:0",
        &ServeConfig {
            max_in_flight: 8,
            cache_bytes: 1 << 20,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();

    // Reference results from a direct, in-process service: what the
    // library returns without any transport in between.
    let reference = Service::new(&ServeConfig::default());
    let expected: Vec<String> = TRAFFIC
        .iter()
        .map(|(method, params)| {
            reference
                .call(method, &Value::parse(params).unwrap())
                .result
                .expect("reference call succeeds")
        })
        .collect();

    // Four client threads, two passes each, interleaved over one
    // connection per thread.
    std::thread::scope(|s| {
        for t in 0..4 {
            let expected = &expected;
            s.spawn(move || {
                let (mut writer, mut reader) = connect(addr);
                for round in 0..2 {
                    for (i, (method, params)) in TRAFFIC.iter().enumerate() {
                        let id = t * 1000 + round * 100 + i;
                        let response = roundtrip(&mut writer, &mut reader, id, method, params);
                        let v = Value::parse(&response).expect("response parses");
                        assert_eq!(
                            v.get("ok"),
                            Some(&Value::Bool(true)),
                            "{method}: {response}"
                        );
                        assert_eq!(
                            v.get("id").and_then(Value::as_f64),
                            Some(id as f64),
                            "id echoed"
                        );
                        // Byte-identical to the direct library call.
                        assert_eq!(
                            result_slice(&response).expect("result member"),
                            expected[i],
                            "{method} result differs from direct call"
                        );
                    }
                }
            });
        }
    });

    // 4 threads x 2 rounds of the same 7 requests: the memo must have
    // warmed (only the first arrival of each deterministic request
    // computes; batches and pings always execute).
    let (mut writer, mut reader) = connect(addr);
    let stats_line = roundtrip(&mut writer, &mut reader, 9000, "server.stats", "{}");
    let stats = Value::parse(&stats_line).expect("stats parse");
    let result = stats.get("result").expect("stats result");
    let cache_hits = result
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Value::as_f64)
        .expect("cache hits");
    assert!(cache_hits >= 1.0, "repeat traffic must hit the memo");
    let lib_entries = result
        .get("library")
        .and_then(|l| l.get("entries"))
        .and_then(Value::as_f64)
        .expect("library entries");
    assert!(lib_entries >= 2.0, "shared library warmed: {stats_line}");
    assert_eq!(
        result
            .get("shed")
            .and_then(Value::as_f64)
            .expect("shed count"),
        0.0,
        "nothing shed below the in-flight limit"
    );
    // Obs adoption: request spans from connection threads landed in the
    // service-wide report.
    let spans = result
        .get("obs")
        .and_then(|o| o.get("spans"))
        .and_then(Value::as_array)
        .expect("obs spans");
    assert!(
        spans
            .iter()
            .any(|row| row.get("path").and_then(Value::as_str) == Some("serve.request")),
        "adopted request spans missing: {stats_line}"
    );

    // Malformed input gets a 400 on the same connection, which stays
    // usable afterwards.
    write_line(&mut writer, "this is not json").unwrap();
    let response = reader.read_line(&|| false).unwrap().unwrap();
    let v = Value::parse(&response).unwrap();
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_f64),
        Some(f64::from(ERR_BAD_REQUEST))
    );
    let pong = roundtrip(&mut writer, &mut reader, 9001, "server.ping", "{}");
    assert!(pong.contains("\"pong\":true"));

    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn overload_is_shed_with_explicit_errors() {
    // One execution slot; six simultaneous slow requests released by a
    // barrier: at least one must be shed, at least one must finish.
    let server = Server::bind(
        "127.0.0.1:0",
        &ServeConfig {
            max_in_flight: 1,
            cache_bytes: 1 << 16,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();
    let barrier = Barrier::new(6);

    let (ok, shed): (u64, u64) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let barrier = &barrier;
                s.spawn(move || {
                    let (mut writer, mut reader) = connect(addr);
                    barrier.wait();
                    let response =
                        roundtrip(&mut writer, &mut reader, i, "debug.sleep", "{\"ms\":150}");
                    let v = Value::parse(&response).unwrap();
                    if v.get("ok") == Some(&Value::Bool(true)) {
                        (1, 0)
                    } else {
                        let code = v
                            .get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(Value::as_f64);
                        assert_eq!(
                            code,
                            Some(f64::from(ERR_OVERLOADED)),
                            "only 429s expected: {response}"
                        );
                        (0, 1)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(o, s2), (a, b)| (o + a, s2 + b))
    });
    assert!(ok >= 1, "at least one request must be admitted");
    assert!(shed >= 1, "overload must shed with explicit errors");
    assert_eq!(ok + shed, 6);

    // The shed counter is visible in the stats.
    let (mut writer, mut reader) = connect(addr);
    let stats_line = roundtrip(&mut writer, &mut reader, 0, "server.stats", "{}");
    let stats = Value::parse(&stats_line).unwrap();
    let reported = stats
        .get("result")
        .and_then(|r| r.get("shed"))
        .and_then(Value::as_f64)
        .expect("shed stat");
    assert_eq!(reported as u64, shed);

    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn oversized_line_gets_an_error_response_before_close() {
    // A client that streams past MAX_LINE_BYTES without a newline must
    // get a well-formed 400 error line back — not a silent reset — and
    // then the connection closes.
    let server = Server::bind(
        "127.0.0.1:0",
        &ServeConfig {
            max_in_flight: 2,
            cache_bytes: 1 << 16,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();

    let (mut writer, mut reader) = connect(addr);
    let chunk = vec![b'x'; 64 << 10];
    let mut sent = 0usize;
    while sent <= MAX_LINE_BYTES {
        writer.write_all(&chunk).expect("oversized write accepted");
        sent += chunk.len();
    }
    // Half-close so the server's discard phase sees EOF promptly.
    writer
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let response = reader
        .read_line(&|| false)
        .expect("error line readable")
        .expect("one error line before close");
    let v = Value::parse(&response).expect("well-formed JSON error line");
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{response}");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_f64),
        Some(f64::from(ERR_BAD_REQUEST)),
        "{response}"
    );
    assert!(
        response.contains("MAX_LINE_BYTES"),
        "error names the limit: {response}"
    );
    // Then EOF: the connection is closed, nothing else arrives.
    assert_eq!(reader.read_line(&|| false).expect("clean close"), None);

    // The server survives and stays responsive.
    let (mut writer, mut reader) = connect(addr);
    let pong = roundtrip(&mut writer, &mut reader, 1, "server.ping", "{}");
    assert!(pong.contains("\"pong\":true"));
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn restart_on_warm_disk_answers_cached_and_byte_identical() {
    // Boot on a persistent cache dir, compute a golden compare, shut
    // down; reboot on the same dir and demand the first repeat comes
    // back cached:true with byte-identical result bytes — the restart
    // warm-path acceptance for the disk tier, end to end over TCP.
    let dir = std::env::temp_dir().join(format!("lim-serve-smoke-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        max_in_flight: 2,
        cache_bytes: 1 << 20,
        disk_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    const METHOD: &str = "golden.compare";
    const PARAMS: &str = "{\"words\":24,\"bits\":9,\"stack\":2}";

    let server = Server::bind("127.0.0.1:0", &config).expect("bind cold server");
    let addr = server.local_addr();
    let handle = server.spawn();
    let (mut writer, mut reader) = connect(addr);
    let cold = roundtrip(&mut writer, &mut reader, 7, METHOD, PARAMS);
    assert!(cold.contains("\"cached\":false"), "first compute: {cold}");
    handle.shutdown_and_join().expect("cold drain");

    let server = Server::bind("127.0.0.1:0", &config).expect("bind warm server");
    let addr = server.local_addr();
    let handle = server.spawn();
    let (mut writer, mut reader) = connect(addr);
    let warm = roundtrip(&mut writer, &mut reader, 7, METHOD, PARAMS);
    assert_eq!(
        warm,
        cold.replace("\"cached\":false", "\"cached\":true"),
        "restart answer must come from disk, byte-identical"
    );
    handle.shutdown_and_join().expect("warm drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(target_os = "linux")]
#[test]
fn a_thousand_idle_connections_cost_no_threads() {
    // The poll loop's reason to exist: idle connections are slab slots,
    // not threads. Open 1000, verify the process thread count is flat
    // and the server still answers promptly, then drop them and watch
    // the accounting drain.
    fn thread_count() -> u64 {
        std::fs::read_to_string("/proc/self/status")
            .expect("/proc/self/status")
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line")
            .trim()
            .parse()
            .expect("thread count parses")
    }
    fn connections(stats: &str) -> (u64, u64, u64) {
        let v = Value::parse(stats).expect("stats parse");
        let conns = v
            .get("result")
            .and_then(|r| r.get("connections"))
            .expect("connections object")
            .clone();
        let get = |k: &str| conns.get(k).and_then(Value::as_f64).expect(k) as u64;
        (get("open"), get("accepted"), get("closed"))
    }

    let server = Server::bind(
        "127.0.0.1:0",
        &ServeConfig {
            max_in_flight: 4,
            cache_bytes: 1 << 20,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();

    let (mut writer, mut reader) = connect(addr);
    roundtrip(&mut writer, &mut reader, 0, "server.ping", "{}");
    let before = thread_count();

    const IDLE: usize = 1000;
    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}"))
        })
        .collect();
    // Wait for the server to accept them all (it batches accepts per
    // poll wakeup).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = roundtrip(&mut writer, &mut reader, 1, "server.stats", "{}");
        let (open, _, _) = connections(&stats);
        if open >= (IDLE + 1) as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server accepted only {open} connections: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let after = thread_count();
    assert!(
        after <= before + 4,
        "idle connections must not spawn threads: {before} -> {after}"
    );
    // Still responsive with 1000 idle connections parked.
    let started = Instant::now();
    let pong = roundtrip(&mut writer, &mut reader, 2, "server.ping", "{}");
    assert!(pong.contains("\"pong\":true"));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "ping under idle load took {:?}",
        started.elapsed()
    );

    drop(idle);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = roundtrip(&mut writer, &mut reader, 3, "server.stats", "{}");
        let (open, accepted, closed) = connections(&stats);
        if open <= 1 {
            assert_eq!(accepted, closed + open, "accounting must balance");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dropped connections not reaped: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn shutdown_request_drains_the_server() {
    let server = Server::bind("127.0.0.1:0", &ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run());

    let (mut writer, mut reader) = connect(addr);
    let response = roundtrip(&mut writer, &mut reader, 1, "server.shutdown", "{}");
    assert!(response.contains("\"draining\":true"), "{response}");
    // run() must return once the drain completes.
    join.join().expect("server thread").expect("clean exit");
    // And the port is released: a fresh connect must fail.
    assert!(TcpStream::connect(addr).is_err() || {
        // Some platforms accept then reset; either way no server answers.
        let (mut w, mut r) = connect(addr);
        write_line(&mut w, "{\"method\":\"server.ping\"}").ok();
        r.read_line(&|| false).ok().flatten().is_none()
    });
}
