//! Bench: request round-trip cost through the full TCP + memo stack.
//!
//! Boots an in-process server on an ephemeral port and measures three
//! paths over a persistent connection: the protocol floor (`ping`), a
//! memo hit (`estimate_hit`), and the compute path with the memo
//! bypassed but the brick library warm (`estimate_nocache`).

use lim_serve::net::{write_line, LineReader};
use lim_serve::{ServeConfig, Server};
use lim_testkit::bench::{black_box, Bench};
use std::net::TcpStream;

struct Conn {
    writer: TcpStream,
    reader: LineReader,
}

impl Conn {
    fn open(addr: std::net::SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Conn {
            reader: LineReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        write_line(&mut self.writer, line).expect("write");
        self.reader
            .read_line(&|| false)
            .expect("read")
            .expect("response")
    }
}

fn main() {
    let mut c = Bench::from_args("serve_load");
    let server = Server::bind(
        "127.0.0.1:0",
        &ServeConfig {
            max_in_flight: 8,
            cache_bytes: 1 << 20,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut conn = Conn::open(addr);

    // Warm the memo and the library before measuring.
    conn.roundtrip("{\"method\":\"brick.estimate\",\"params\":{\"words\":16,\"bits\":10,\"stack\":4}}");

    c.bench_function("ping_roundtrip", |b| {
        b.iter(|| black_box(conn.roundtrip("{\"method\":\"server.ping\"}").len()))
    });
    c.bench_function("estimate_memo_hit", |b| {
        b.iter(|| {
            black_box(
                conn.roundtrip(
                    "{\"method\":\"brick.estimate\",\
                     \"params\":{\"words\":16,\"bits\":10,\"stack\":4}}",
                )
                .len(),
            )
        })
    });
    c.bench_function("estimate_warm_nocache", |b| {
        b.iter(|| {
            black_box(
                conn.roundtrip(
                    "{\"method\":\"brick.estimate\",\
                     \"params\":{\"words\":16,\"bits\":10,\"stack\":4,\"nocache\":true}}",
                )
                .len(),
            )
        })
    });

    handle.shutdown_and_join().expect("clean drain");
    c.finish();
}
