//! Bench: the scale-out paths added with the persistent compile cache
//! and the poll loop.
//!
//! `serve_startup` measures boot-to-first-answer for a `golden.compare`
//! request: `cold_first_request` boots on an empty cache directory and
//! pays the full compile + transient solve, `warm_first_request` boots
//! on a directory populated by an earlier run and must answer from the
//! disk tier. The gap is what a shard restart costs with and without
//! the persistent cache.
//!
//! `serve_idle_conns` measures the ping round trip on an active
//! connection while 1000 idle connections are parked on the same
//! shard — the poll loop's claim that idle sockets are ~free must show
//! up as a ping latency comparable to `ping_alone` (the idle-conn row
//! batches 10 pings per sample to average out scheduler noise).

use lim_serve::net::{write_line, LineReader};
use lim_serve::{ServeConfig, Server};
use lim_testkit::bench::{black_box, Bench};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

const GOLDEN: &str =
    "{\"method\":\"golden.compare\",\"params\":{\"words\":24,\"bits\":9,\"stack\":2}}";

struct Conn {
    writer: TcpStream,
    reader: LineReader,
}

impl Conn {
    fn open(addr: std::net::SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Conn {
            reader: LineReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        write_line(&mut self.writer, line).expect("write");
        self.reader
            .read_line(&|| false)
            .expect("read")
            .expect("response")
    }
}

fn disk_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        max_in_flight: 4,
        cache_bytes: 1 << 20,
        disk_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

/// Boot a server on `dir`, answer one golden compare, drain. Returns
/// the response line so callers can assert the cache tier that served
/// it.
fn boot_and_answer(dir: &Path) -> String {
    let server = Server::bind("127.0.0.1:0", &disk_config(dir)).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut conn = Conn::open(addr);
    let response = conn.roundtrip(GOLDEN);
    drop(conn);
    handle.shutdown_and_join().expect("drain");
    response
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lim-serve-scale-{tag}-{}", std::process::id()))
}

fn main() {
    // --- serve_startup: cold vs warm first answer across a restart ---
    let mut c = Bench::from_args("serve_startup");

    let cold_dir = temp_dir("cold");
    c.bench_function("cold_first_request", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&cold_dir);
            black_box(boot_and_answer(&cold_dir).len())
        })
    });
    let _ = std::fs::remove_dir_all(&cold_dir);

    let warm_dir = temp_dir("warm");
    let _ = std::fs::remove_dir_all(&warm_dir);
    let seeded = boot_and_answer(&warm_dir);
    assert!(seeded.contains("\"cached\":false"), "seed run: {seeded}");
    // Warm the measured path explicitly (thread spawn, file cache) so
    // no-warmup smoke runs measure the same steady state as full runs.
    for _ in 0..3 {
        boot_and_answer(&warm_dir);
    }
    c.bench_function("warm_first_request", |b| {
        b.iter(|| {
            let response = boot_and_answer(&warm_dir);
            debug_assert!(response.contains("\"cached\":true"), "{response}");
            black_box(response.len())
        })
    });
    let _ = std::fs::remove_dir_all(&warm_dir);
    c.finish();

    // --- serve_idle_conns: ping latency with 1000 parked sockets ---
    let mut c = Bench::from_args("serve_idle_conns");
    let server = Server::bind(
        "127.0.0.1:0",
        &ServeConfig {
            max_in_flight: 4,
            cache_bytes: 1 << 20,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut conn = Conn::open(addr);
    conn.roundtrip("{\"method\":\"server.ping\"}");

    c.bench_function("ping_alone", |b| {
        b.iter(|| black_box(conn.roundtrip("{\"method\":\"server.ping\"}").len()))
    });

    let idle: Vec<TcpStream> = (0..1000)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();
    // Let the server accept the whole backlog before measuring: poll
    // the open-connections gauge until all 1001 sockets are in, then
    // warm the measured path (smoke runs skip the harness warmup).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let stats = conn.roundtrip("{\"method\":\"server.stats\"}");
        let open = lim_obs::json::Value::parse(&stats)
            .ok()
            .and_then(|v| {
                v.get("result")?
                    .get("connections")?
                    .get("open")?
                    .as_f64()
            })
            .unwrap_or(0.0);
        if open >= 1001.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle backlog never settled: open={open}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    for _ in 0..20 {
        conn.roundtrip("{\"method\":\"server.ping\"}");
    }
    // Batch 10 pings per sample: the per-ping cost here is one 1001-fd
    // poll scan (~60 µs), small enough that single-ping samples on a
    // busy one-core box are dominated by scheduler hiccups. Divide the
    // row by 10 for the per-ping figure.
    c.bench_function("ping_x10_under_1000_idle", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..10 {
                total += conn.roundtrip("{\"method\":\"server.ping\"}").len();
            }
            black_box(total)
        })
    });
    drop(idle);

    handle.shutdown_and_join().expect("drain");
    c.finish();
}
