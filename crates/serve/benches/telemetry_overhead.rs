//! Bench: the hot-path cost of the telemetry layer.
//!
//! Pins the budget the serving loop pays per request: a shared
//! histogram record (the per-endpoint latency path, target < 100 ns), a
//! rolling-window record (one mutex lock + a plain histogram record), a
//! trace-id mint, and the disabled-observability span floor (one
//! relaxed atomic load, nothing else).

use lim_obs::{RollingWindow, SharedHistogram, Span, TraceId};
use lim_testkit::bench::{black_box, Bench};
use std::time::Duration;

fn main() {
    let mut c = Bench::from_args("telemetry_overhead");

    // Walk a mixed latency range so bucket indexing is not trained on a
    // single branch target.
    let hist = SharedHistogram::new();
    let mut ns = 1u64;
    c.bench_function("hist_record", |b| {
        b.iter(|| {
            ns = ns.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(7);
            hist.record_ns(black_box(ns & 0x000f_ffff));
        })
    });
    black_box(hist.count());

    let window = RollingWindow::new();
    let mut tick = 0u64;
    c.bench_function("window_record", |b| {
        b.iter(|| {
            tick = tick.wrapping_add(4099);
            window.record(black_box(Duration::from_nanos(tick & 0x000f_ffff)));
        })
    });

    c.bench_function("trace_mint", |b| b.iter(|| black_box(TraceId::mint().0)));

    // With observability off a span must cost one relaxed atomic load.
    lim_obs::set_enabled(false);
    c.bench_function("disabled_span", |b| {
        b.iter(|| {
            let span = Span::enter(black_box("bench.noop"));
            black_box(&span);
        })
    });

    c.finish();
}
