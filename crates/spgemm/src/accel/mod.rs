//! Cycle-level accelerator simulators.
//!
//! Both chips implement column-by-column SpGEMM and produce bit-identical
//! products; they differ in how a column's partial results are merged:
//!
//! * [`lim_cam`] — the LiM chip: content-addressable index matching in a
//!   single cycle per product term (paper Fig. 5).
//! * [`heap`] — the baseline chip: FIFO-SRAM priority queue whose sorted
//!   insertion shifts entries sequentially (the latency/energy sink the
//!   paper identifies).
//!
//! The shared [`AccelStats`] makes the two cost models directly
//! comparable.

pub mod heap;
pub mod lim_cam;

use crate::matrix::Csc;

/// Hardware event counts accumulated over one multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccelStats {
    /// Total clock cycles.
    pub cycles: u64,
    /// Multiply–accumulate operations (equal for both chips on the same
    /// input).
    pub multiplies: u64,
    /// CAM match operations (LiM chip only).
    pub cam_matches: u64,
    /// New-entry insertions into an accumulator structure.
    pub new_entries: u64,
    /// Cycles burned shifting FIFO contents (baseline chip only).
    pub shift_cycles: u64,
    /// Accumulator overflow flushes (LiM chip only).
    pub overflow_flushes: u64,
    /// Words read from the on-chip source matrix SRAMs.
    pub mem_reads: u64,
    /// Result words written out.
    pub mem_writes: u64,
}

impl AccelStats {
    /// Cycles per useful multiply — the architecture-efficiency figure.
    pub fn cycles_per_multiply(&self) -> f64 {
        if self.multiplies == 0 {
            0.0
        } else {
            self.cycles as f64 / self.multiplies as f64
        }
    }
}

/// A completed accelerator run: the (exact) product and its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelResult {
    /// The computed product.
    pub product: Csc,
    /// Hardware event counts.
    pub stats: AccelStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_per_multiply_handles_zero() {
        let s = AccelStats::default();
        assert_eq!(s.cycles_per_multiply(), 0.0);
        let s = AccelStats {
            cycles: 30,
            multiplies: 10,
            ..AccelStats::default()
        };
        assert!((s.cycles_per_multiply() - 3.0).abs() < 1e-12);
    }
}
