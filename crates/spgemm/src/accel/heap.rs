//! The heap/FIFO-based non-LiM SpGEMM baseline, cycle level.
//!
//! The conventional column-by-column implementation (paper §4, after
//! Buluç & Gilbert): each result column is formed by a multi-way merge of
//! the scaled A-columns selected by B's column, using a priority queue
//! built from FIFO SRAMs. The FIFO keeps its entries sorted, so every
//! insertion shifts the tail sequentially — one read plus one write per
//! shifted entry — and the queue is torn down and rebuilt at every column.
//! That sequential shifting is exactly the latency and energy sink the
//! paper measures against.

use crate::accel::{AccelResult, AccelStats};
use crate::error::SpgemmError;
use crate::matrix::{Csc, Triplets};
use crate::semiring::{Arithmetic, Semiring};

/// Cycle-level model of the FIFO-heap SpGEMM chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapAccelerator {
    /// Capacity of the sorted FIFO (bounds the shift distance).
    pub fifo_capacity: usize,
    /// Fixed per-column FIFO re-arrangement overhead, cycles
    /// ("re-arrangement of FIFO based SRAM arrays at every column
    /// computation").
    pub column_setup_cycles: u64,
}

impl HeapAccelerator {
    /// The paper's baseline silicon configuration.
    pub fn paper_chip() -> Self {
        HeapAccelerator {
            fifo_capacity: 512,
            column_setup_cycles: 24,
        }
    }

    /// Creates a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::BadAccelerator`] for a zero-capacity FIFO.
    pub fn new(fifo_capacity: usize, column_setup_cycles: u64) -> Result<Self, SpgemmError> {
        if fifo_capacity == 0 {
            return Err(SpgemmError::BadAccelerator {
                reason: "FIFO capacity must be non-zero".into(),
            });
        }
        Ok(HeapAccelerator {
            fifo_capacity,
            column_setup_cycles,
        })
    }

    /// Runs `C = A · B`, returning the exact product and the cycle/event
    /// accounting.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::DimensionMismatch`] when shapes disagree.
    pub fn multiply(&self, a: &Csc, b: &Csc) -> Result<AccelResult, SpgemmError> {
        self.multiply_with(Arithmetic, a, b)
    }

    /// Like [`multiply`](Self::multiply) over an arbitrary [`Semiring`].
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::DimensionMismatch`] when shapes disagree.
    pub fn multiply_with<S: Semiring>(
        &self,
        s: S,
        a: &Csc,
        b: &Csc,
    ) -> Result<AccelResult, SpgemmError> {
        if a.cols() != b.rows() {
            return Err(SpgemmError::DimensionMismatch {
                left_cols: a.cols(),
                right_rows: b.rows(),
            });
        }
        let mut stats = AccelStats::default();
        let mut out = Triplets::new(a.rows(), b.cols());

        for j in 0..b.cols() {
            // Ways of the merge: one per nonzero of B(:, j).
            struct Way {
                rows: Vec<usize>,
                vals: Vec<f64>,
                pos: usize,
                scale: f64,
            }
            let mut ways: Vec<Way> = Vec::new();
            for (k, bv) in b.column(j) {
                stats.mem_reads += 1;
                let (rows, vals): (Vec<usize>, Vec<f64>) = a.column(k).unzip();
                if !rows.is_empty() {
                    ways.push(Way {
                        rows,
                        vals,
                        pos: 0,
                        scale: bv,
                    });
                }
            }
            if ways.is_empty() {
                continue;
            }
            stats.cycles += self.column_setup_cycles;

            // Sorted FIFO of way heads: (row, way index), smallest row at
            // the back for O(1) pop. An insertion shifts everything below
            // the insertion point: 2 cycles (read + write) per entry, with
            // the shift distance bounded by the FIFO capacity.
            let mut fifo: Vec<(usize, usize)> = Vec::new();
            let insert = |fifo: &mut Vec<(usize, usize)>, stats: &mut AccelStats, row: usize, way: usize| {
                let pos = fifo
                    .binary_search_by(|probe: &(usize, usize)| row.cmp(&probe.0))
                    .unwrap_or_else(|p| p);
                // Every entry with a larger row sits between the insertion
                // point and the far end of the shift register and must move
                // one slot to open the gap. Merge insertions land near the
                // minimum, so this is nearly the whole queue — the
                // sequential-shifting cost the paper calls out.
                let shift = pos.min(self.fifo_capacity) as u64;
                stats.cycles += 1 + 2 * shift;
                stats.shift_cycles += 2 * shift;
                fifo.insert(pos, (row, way));
                stats.new_entries += 1;
            };
            for (w, way) in ways.iter().enumerate() {
                insert(&mut fifo, &mut stats, way.rows[0], w);
            }

            // Merge: pop the minimum, accumulate runs of equal rows.
            let mut cur_row: Option<usize> = None;
            let mut acc = s.zero();
            while let Some((row, w)) = fifo.pop() {
                stats.cycles += 1; // pop + MAC issue
                let way = &mut ways[w];
                let product = s.times(way.vals[way.pos], way.scale);
                stats.multiplies += 1;
                stats.mem_reads += 1;
                match cur_row {
                    Some(r) if r == row => acc = s.plus(acc, product),
                    Some(r) => {
                        if !s.is_zero(acc) {
                            out.push(r, j, acc).expect("in range");
                        }
                        stats.mem_writes += 1;
                        cur_row = Some(row);
                        acc = product;
                    }
                    None => {
                        cur_row = Some(row);
                        acc = product;
                    }
                }
                way.pos += 1;
                if way.pos < way.rows.len() {
                    let next_row = way.rows[way.pos];
                    insert(&mut fifo, &mut stats, next_row, w);
                }
            }
            if let Some(r) = cur_row {
                if !s.is_zero(acc) {
                    out.push(r, j, acc).expect("in range");
                }
                stats.mem_writes += 1;
            }
        }

        Ok(AccelResult {
            product: out.to_csc(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::lim_cam::LimCamAccelerator;
    use crate::gen::MatrixGen;
    use crate::reference::spgemm;

    #[test]
    fn product_matches_reference() {
        let a = MatrixGen::erdos_renyi(96, 6.0, 31).to_csc();
        let b = MatrixGen::erdos_renyi(96, 6.0, 32).to_csc();
        let expect = spgemm(&a, &b).unwrap();
        let got = HeapAccelerator::paper_chip().multiply(&a, &b).unwrap();
        assert!(got.product.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn both_accelerators_agree_exactly() {
        let a = MatrixGen::rmat(256, 2048, 0.57, 0.19, 0.19, 17).to_csc();
        let lim = LimCamAccelerator::paper_chip().multiply(&a, &a).unwrap();
        let heap = HeapAccelerator::paper_chip().multiply(&a, &a).unwrap();
        assert!(lim.product.approx_eq(&heap.product, 1e-9));
        assert_eq!(lim.stats.multiplies, heap.stats.multiplies);
    }

    #[test]
    fn shifting_dominates_on_wide_merges() {
        // Hub columns force wide merges: shifting should dwarf the
        // useful MAC work.
        let a = MatrixGen::hub(256, 4.0, 2, 128, 5).to_csc();
        let res = HeapAccelerator::paper_chip().multiply(&a, &a).unwrap();
        assert!(
            res.stats.shift_cycles > res.stats.multiplies,
            "shifts {} vs mults {}",
            res.stats.shift_cycles,
            res.stats.multiplies
        );
    }

    #[test]
    fn lim_wins_and_gap_grows_with_merge_width() {
        let chip_lim = LimCamAccelerator::paper_chip();
        let chip_heap = HeapAccelerator::paper_chip();
        let narrow = MatrixGen::banded(128, 2, 7).to_csc();
        let wide = MatrixGen::hub(256, 4.0, 6, 200, 7).to_csc();
        let ratio = |m: &crate::matrix::Csc| {
            let l = chip_lim.multiply(m, m).unwrap().stats.cycles as f64;
            let h = chip_heap.multiply(m, m).unwrap().stats.cycles as f64;
            h / l
        };
        let narrow_ratio = ratio(&narrow);
        let wide_ratio = ratio(&wide);
        assert!(narrow_ratio > 1.0, "narrow {narrow_ratio}");
        assert!(
            wide_ratio > 2.0 * narrow_ratio,
            "wide {wide_ratio} vs narrow {narrow_ratio}"
        );
    }

    #[test]
    fn fifo_capacity_bounds_shift_cost() {
        let a = MatrixGen::hub(256, 4.0, 2, 200, 9).to_csc();
        let capped = HeapAccelerator::new(32, 24).unwrap().multiply(&a, &a).unwrap();
        let uncapped = HeapAccelerator::new(100_000, 24)
            .unwrap()
            .multiply(&a, &a)
            .unwrap();
        assert!(capped.stats.cycles <= uncapped.stats.cycles);
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(HeapAccelerator::new(0, 10).is_err());
    }
}
