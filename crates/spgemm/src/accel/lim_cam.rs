//! The LiM CAM-SpGEMM accelerator (paper Fig. 5), cycle level.
//!
//! Architecture: `n_columns` horizontal CAM blocks form the columns of
//! the result sub-block in parallel; each stores the row indices of its
//! column's partial results in a CAM (capacity [`cam_entries`]) with the
//! values in a companion scratch-pad SRAM. A vertical CAM with
//! `n_columns` entries routes each incoming product term to the matching
//! column block. Per product term:
//!
//! 1. vertical CAM match on the column index (same cycle),
//! 2. horizontal CAM match on the row index,
//! 3. hit → multiply-and-add into the scratch pad; miss → new entry —
//!
//! all in **one cycle** (pipelined), the single-cycle matching that gives
//! the chip its advantage. Overflowing a column's CAM flushes the block
//! to memory (writeback plus later merge), and finished columns drain one
//! entry per cycle.
//!
//! [`cam_entries`]: LimCamAccelerator::cam_entries

use crate::accel::{AccelResult, AccelStats};
use crate::error::SpgemmError;
use crate::matrix::{Csc, Triplets};
use crate::semiring::{Arithmetic, Semiring};
use std::collections::BTreeMap;

/// Cycle-level model of the LiM CAM-SpGEMM chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimCamAccelerator {
    /// Horizontal CAM blocks (sub-block column count N).
    pub n_columns: usize,
    /// Entries per horizontal CAM.
    pub cam_entries: usize,
    /// Row-index width: sub-blocks span at most `2^key_bits` rows, so
    /// taller matrices are processed in row panels (the paper's 10-bit
    /// indices bound sub-blocks to 1024 rows).
    pub key_bits: usize,
    /// Fixed cycles to reconfigure between row panels of a tile.
    pub panel_switch_cycles: u64,
}

impl LimCamAccelerator {
    /// The paper's silicon: 32 columns of 16-entry 10-bit CAMs.
    pub fn paper_chip() -> Self {
        LimCamAccelerator {
            n_columns: 32,
            cam_entries: 16,
            key_bits: 10,
            panel_switch_cycles: 4,
        }
    }

    /// Creates a custom configuration with the paper's 10-bit indices.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::BadAccelerator`] for zero dimensions.
    pub fn new(n_columns: usize, cam_entries: usize) -> Result<Self, SpgemmError> {
        if n_columns == 0 || cam_entries == 0 {
            return Err(SpgemmError::BadAccelerator {
                reason: "LiM accelerator dimensions must be non-zero".into(),
            });
        }
        Ok(LimCamAccelerator {
            n_columns,
            cam_entries,
            key_bits: 10,
            panel_switch_cycles: 4,
        })
    }

    /// Rows per sub-block panel.
    pub fn panel_rows(&self) -> usize {
        1usize << self.key_bits
    }

    /// Runs `C = A · B`, returning the exact product and the cycle/event
    /// accounting.
    ///
    /// Cost model (one tile of `n_columns` result columns at a time):
    ///
    /// * every A column needed by the tile is **streamed once** and
    ///   broadcast — each element reaches all horizontal CAMs whose B
    ///   column consumes it, and those blocks match + MAC concurrently
    ///   (this is the "forming all the columns of C in parallel" of §4);
    /// * a tile therefore takes `max(stream cycles, busiest column's
    ///   work)` — the chip is input-bandwidth-bound on sparse tiles and
    ///   compute-bound on skewed ones;
    /// * a column whose CAM overflows stalls for `2 · cam_entries`
    ///   cycles per flush (write out + later merge), charged to that
    ///   column's work;
    /// * finished columns drain one entry per cycle, in parallel across
    ///   the tile (double-buffered scratch pads).
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::DimensionMismatch`] when shapes disagree.
    pub fn multiply(&self, a: &Csc, b: &Csc) -> Result<AccelResult, SpgemmError> {
        self.multiply_with(Arithmetic, a, b)
    }

    /// Like [`multiply`](Self::multiply) over an arbitrary [`Semiring`] —
    /// the **generalized** SpGEMM of the paper's title. The hardware cost
    /// model is identical: the CAM matches indices and the
    /// multiply-and-add block evaluates `⊗`/`⊕` instead of `×`/`+`.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::DimensionMismatch`] when shapes disagree.
    pub fn multiply_with<S: Semiring>(
        &self,
        s: S,
        a: &Csc,
        b: &Csc,
    ) -> Result<AccelResult, SpgemmError> {
        if a.cols() != b.rows() {
            return Err(SpgemmError::DimensionMismatch {
                left_cols: a.cols(),
                right_rows: b.rows(),
            });
        }
        let mut stats = AccelStats::default();
        let mut out = Triplets::new(a.rows(), b.cols());

        let panel_rows = self.panel_rows();
        for tile_start in (0..b.cols()).step_by(self.n_columns) {
            let tile_end = (tile_start + self.n_columns).min(b.cols());
            let width = tile_end - tile_start;

            // Broadcast schedule: which tile columns consume each A column.
            let mut users: BTreeMap<usize, Vec<(usize, f64)>> = BTreeMap::new();
            for j in tile_start..tile_end {
                for (k, bv) in b.column(j) {
                    stats.mem_reads += 1; // stream B element
                    users.entry(k).or_default().push((j - tile_start, bv));
                }
            }

            // Row panels: the key width bounds how many A rows a
            // sub-block pass can index, so tall matrices take several
            // passes with disjoint row ranges.
            let n_panels = a.rows().div_ceil(panel_rows).max(1);
            let mut first_active_panel = true;
            for panel in 0..n_panels {
                let row_lo = panel * panel_rows;
                let row_hi = (row_lo + panel_rows).min(a.rows());

                // Per-column accelerator state for this panel.
                let mut cam: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); width];
                let mut spill: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); width];
                let mut col_work = vec![0u64; width];

                let mut stream_cycles = 0u64;
                for (k, consumers) in &users {
                    for (i, av) in a.column(*k) {
                        if i < row_lo || i >= row_hi {
                            continue;
                        }
                        stream_cycles += 1;
                        stats.mem_reads += 1;
                        for &(t, bv) in consumers {
                            // Vertical + horizontal CAM match and MAC, one
                            // cycle of this column's unit.
                            col_work[t] += 1;
                            stats.cam_matches += 1;
                            stats.multiplies += 1;
                            if let Some(v) = cam[t].get_mut(&i) {
                                *v = s.plus(*v, s.times(av, bv));
                            } else {
                                if cam[t].len() == self.cam_entries {
                                    stats.overflow_flushes += 1;
                                    col_work[t] += 2 * self.cam_entries as u64;
                                    stats.mem_writes += self.cam_entries as u64;
                                    for (r, v) in std::mem::take(&mut cam[t]) {
                                        let e = spill[t].entry(r).or_insert_with(|| s.zero());
                                        *e = s.plus(*e, v);
                                    }
                                }
                                cam[t].insert(i, s.times(av, bv));
                                stats.new_entries += 1;
                            }
                        }
                    }
                }
                if stream_cycles == 0 {
                    continue; // no work in this panel
                }
                if !first_active_panel {
                    stats.cycles += self.panel_switch_cycles;
                }
                first_active_panel = false;

                // Drain finished columns (parallel across the tile; panels
                // cover disjoint row ranges, so results concatenate).
                let mut max_drain = 0u64;
                for t in 0..width {
                    let mut drain = 0u64;
                    for (r, v) in std::mem::take(&mut cam[t]) {
                        let e = spill[t].entry(r).or_insert_with(|| s.zero());
                        *e = s.plus(*e, v);
                    }
                    for (r, v) in std::mem::take(&mut spill[t]) {
                        if !s.is_zero(v) {
                            out.push(r, tile_start + t, v).expect("in range");
                        }
                        drain += 1;
                        stats.mem_writes += 1;
                    }
                    max_drain = max_drain.max(drain);
                }

                let busiest = col_work.iter().copied().max().unwrap_or(0);
                stats.cycles += stream_cycles.max(busiest) + max_drain;
            }
        }

        Ok(AccelResult {
            product: out.to_csc(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatrixGen;
    use crate::reference::spgemm;

    #[test]
    fn product_matches_reference() {
        let a = MatrixGen::erdos_renyi(96, 6.0, 21).to_csc();
        let b = MatrixGen::erdos_renyi(96, 6.0, 22).to_csc();
        let expect = spgemm(&a, &b).unwrap();
        let got = LimCamAccelerator::paper_chip().multiply(&a, &b).unwrap();
        assert!(got.product.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn parallel_tiles_beat_serial_product_count() {
        let a = MatrixGen::banded(64, 1, 3).to_csc();
        let res = LimCamAccelerator::paper_chip().multiply(&a, &a).unwrap();
        let work = a.multiply_work(&a).unwrap() as u64;
        assert_eq!(res.stats.multiplies, work);
        // No overflows on a banded matrix (≤ 5 distinct rows per column).
        assert_eq!(res.stats.overflow_flushes, 0);
        // The 32 columns work concurrently on shared streams: cycles land
        // strictly below one-per-product, but above the per-tile lower
        // bound (streams are serialized on the input port).
        assert!(
            res.stats.cycles < work + res.product.nnz() as u64,
            "parallel tiles should beat serial operation"
        );
        assert!(res.stats.cycles > 0);
    }

    #[test]
    fn tile_cycles_bounded_by_stream_and_busiest_column() {
        // One tile (32 columns), uniform band: cycles ≈ streams + drain.
        let a = MatrixGen::banded(32, 1, 3).to_csc();
        let res = LimCamAccelerator::paper_chip().multiply(&a, &a).unwrap();
        // Streams = every A column used by the tile, each once = nnz(A).
        let streams = a.nnz() as u64;
        let max_drain = (0..32).map(|c| a.col_nnz(c) as u64).max().unwrap() + 2;
        assert!(
            res.stats.cycles <= streams + max_drain + 8,
            "cycles {} vs streams {streams} + drain bound",
            res.stats.cycles
        );
    }

    #[test]
    fn overflow_flushes_do_not_corrupt_result() {
        // Dense-ish columns exceed 16 CAM entries and force flushes.
        let a = MatrixGen::block_diagonal(64, 32, 0.9, 4).to_csc();
        let chip = LimCamAccelerator::paper_chip();
        let res = chip.multiply(&a, &a).unwrap();
        assert!(res.stats.overflow_flushes > 0);
        let expect = spgemm(&a, &a).unwrap();
        assert!(res.product.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn bigger_cam_fewer_flushes() {
        let a = MatrixGen::block_diagonal(64, 32, 0.9, 4).to_csc();
        let small = LimCamAccelerator::new(32, 8).unwrap().multiply(&a, &a).unwrap();
        let large = LimCamAccelerator::new(32, 64).unwrap().multiply(&a, &a).unwrap();
        assert!(large.stats.overflow_flushes < small.stats.overflow_flushes);
        assert!(large.stats.cycles < small.stats.cycles);
    }

    #[test]
    fn zero_config_rejected() {
        assert!(LimCamAccelerator::new(0, 16).is_err());
        assert!(LimCamAccelerator::new(32, 0).is_err());
    }

    #[test]
    fn tall_matrices_use_row_panels_and_stay_correct() {
        // 2048 rows with 10-bit indices: two panels per tile.
        let a = MatrixGen::erdos_renyi(2048, 4.0, 77).to_csc();
        let chip = LimCamAccelerator::paper_chip();
        assert_eq!(chip.panel_rows(), 1024);
        let res = chip.multiply(&a, &a).unwrap();
        let expect = spgemm(&a, &a).unwrap();
        assert!(res.product.approx_eq(&expect, 1e-9));

        // A wider index (one panel) does the same multiplies with fewer
        // or equal cycles (no panel switches, coarser streams).
        let wide = LimCamAccelerator {
            key_bits: 11,
            ..chip
        };
        let res_wide = wide.multiply(&a, &a).unwrap();
        assert_eq!(res_wide.stats.multiplies, res.stats.multiplies);
        assert!(res_wide.stats.cycles <= res.stats.cycles);
    }
}
