//! The LiM CAM-SpGEMM accelerator (paper Fig. 5), cycle level.
//!
//! Architecture: `n_columns` horizontal CAM blocks form the columns of
//! the result sub-block in parallel; each stores the row indices of its
//! column's partial results in a CAM (capacity [`cam_entries`]) with the
//! values in a companion scratch-pad SRAM. A vertical CAM with
//! `n_columns` entries routes each incoming product term to the matching
//! column block. Per product term:
//!
//! 1. vertical CAM match on the column index (same cycle),
//! 2. horizontal CAM match on the row index,
//! 3. hit → multiply-and-add into the scratch pad; miss → new entry —
//!
//! all in **one cycle** (pipelined), the single-cycle matching that gives
//! the chip its advantage. Overflowing a column's CAM flushes the block
//! to memory (writeback plus later merge), and finished columns drain one
//! entry per cycle.
//!
//! [`cam_entries`]: LimCamAccelerator::cam_entries

use crate::accel::{AccelResult, AccelStats};
use crate::error::SpgemmError;
use crate::matrix::{Csc, Triplets};
use crate::semiring::{Arithmetic, Semiring};

/// Cycle-level model of the LiM CAM-SpGEMM chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimCamAccelerator {
    /// Horizontal CAM blocks (sub-block column count N).
    pub n_columns: usize,
    /// Entries per horizontal CAM.
    pub cam_entries: usize,
    /// Row-index width: sub-blocks span at most `2^key_bits` rows, so
    /// taller matrices are processed in row panels (the paper's 10-bit
    /// indices bound sub-blocks to 1024 rows).
    pub key_bits: usize,
    /// Fixed cycles to reconfigure between row panels of a tile.
    pub panel_switch_cycles: u64,
}

impl LimCamAccelerator {
    /// The paper's silicon: 32 columns of 16-entry 10-bit CAMs.
    pub fn paper_chip() -> Self {
        LimCamAccelerator {
            n_columns: 32,
            cam_entries: 16,
            key_bits: 10,
            panel_switch_cycles: 4,
        }
    }

    /// Creates a custom configuration with the paper's 10-bit indices.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::BadAccelerator`] for zero dimensions.
    pub fn new(n_columns: usize, cam_entries: usize) -> Result<Self, SpgemmError> {
        if n_columns == 0 || cam_entries == 0 {
            return Err(SpgemmError::BadAccelerator {
                reason: "LiM accelerator dimensions must be non-zero".into(),
            });
        }
        Ok(LimCamAccelerator {
            n_columns,
            cam_entries,
            key_bits: 10,
            panel_switch_cycles: 4,
        })
    }

    /// Rows per sub-block panel.
    pub fn panel_rows(&self) -> usize {
        1usize << self.key_bits
    }

    /// Runs `C = A · B`, returning the exact product and the cycle/event
    /// accounting.
    ///
    /// Cost model (one tile of `n_columns` result columns at a time):
    ///
    /// * every A column needed by the tile is **streamed once** and
    ///   broadcast — each element reaches all horizontal CAMs whose B
    ///   column consumes it, and those blocks match + MAC concurrently
    ///   (this is the "forming all the columns of C in parallel" of §4);
    /// * a tile therefore takes `max(stream cycles, busiest column's
    ///   work)` — the chip is input-bandwidth-bound on sparse tiles and
    ///   compute-bound on skewed ones;
    /// * a column whose CAM overflows stalls for `2 · cam_entries`
    ///   cycles per flush (write out + later merge), charged to that
    ///   column's work;
    /// * finished columns drain one entry per cycle, in parallel across
    ///   the tile (double-buffered scratch pads).
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::DimensionMismatch`] when shapes disagree.
    pub fn multiply(&self, a: &Csc, b: &Csc) -> Result<AccelResult, SpgemmError> {
        self.multiply_with(Arithmetic, a, b)
    }

    /// Like [`multiply`](Self::multiply) over an arbitrary [`Semiring`] —
    /// the **generalized** SpGEMM of the paper's title. The hardware cost
    /// model is identical: the CAM matches indices and the
    /// multiply-and-add block evaluates `⊗`/`⊕` instead of `×`/`+`.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::DimensionMismatch`] when shapes disagree.
    pub fn multiply_with<S: Semiring>(
        &self,
        s: S,
        a: &Csc,
        b: &Csc,
    ) -> Result<AccelResult, SpgemmError> {
        if a.cols() != b.rows() {
            return Err(SpgemmError::DimensionMismatch {
                left_cols: a.cols(),
                right_rows: b.rows(),
            });
        }
        let mut stats = AccelStats::default();
        let mut out = Triplets::new(a.rows(), b.cols());

        // All per-column accelerator state is allocated once here and
        // reused across every tile and panel: the CAM is a flat array
        // bounded by `cam_entries` (matched by linear scan, as the
        // hardware matches all entries at once), the spill area is a
        // row-sorted flat array merged on flush, and the broadcast
        // schedule is a k-sorted flat list instead of a fresh tree map
        // per tile.
        let width_max = self.n_columns.min(b.cols());
        let mut cam: Vec<Vec<(usize, f64)>> =
            vec![Vec::with_capacity(self.cam_entries); width_max];
        let mut spill: Vec<Vec<(usize, f64)>> = vec![Vec::new(); width_max];
        let mut col_work: Vec<u64> = vec![0u64; width_max];
        let mut users: Vec<(usize, usize, f64)> = Vec::new();
        let mut merged: Vec<(usize, f64)> = Vec::new();

        let panel_rows = self.panel_rows();
        for tile_start in (0..b.cols()).step_by(self.n_columns) {
            let tile_end = (tile_start + self.n_columns).min(b.cols());
            let width = tile_end - tile_start;

            // Broadcast schedule: which tile columns consume each A
            // column, as `(k, tile column, B value)` grouped by k. The
            // stable sort keeps each k's consumers in ascending tile
            // order, matching the per-column broadcast sequence.
            users.clear();
            for j in tile_start..tile_end {
                for (k, bv) in b.column(j) {
                    stats.mem_reads += 1; // stream B element
                    users.push((k, j - tile_start, bv));
                }
            }
            users.sort_by_key(|&(k, _, _)| k);

            // Row panels: the key width bounds how many A rows a
            // sub-block pass can index, so tall matrices take several
            // passes with disjoint row ranges.
            let n_panels = a.rows().div_ceil(panel_rows).max(1);
            let mut first_active_panel = true;
            for panel in 0..n_panels {
                let row_lo = panel * panel_rows;
                let row_hi = (row_lo + panel_rows).min(a.rows());
                col_work[..width].fill(0);

                let mut stream_cycles = 0u64;
                let mut run = 0usize;
                while run < users.len() {
                    let k = users[run].0;
                    let mut run_end = run;
                    while run_end < users.len() && users[run_end].0 == k {
                        run_end += 1;
                    }
                    let consumers = &users[run..run_end];
                    run = run_end;
                    for (i, av) in a.column(k) {
                        if i < row_lo || i >= row_hi {
                            continue;
                        }
                        stream_cycles += 1;
                        stats.mem_reads += 1;
                        for &(_, t, bv) in consumers {
                            // Vertical + horizontal CAM match and MAC, one
                            // cycle of this column's unit.
                            col_work[t] += 1;
                            stats.cam_matches += 1;
                            stats.multiplies += 1;
                            if let Some((_, v)) =
                                cam[t].iter_mut().find(|&&mut (r, _)| r == i)
                            {
                                *v = s.plus(*v, s.times(av, bv));
                            } else {
                                if cam[t].len() == self.cam_entries {
                                    stats.overflow_flushes += 1;
                                    col_work[t] += 2 * self.cam_entries as u64;
                                    stats.mem_writes += self.cam_entries as u64;
                                    flush_cam(&s, &mut cam[t], &mut spill[t], &mut merged);
                                }
                                cam[t].push((i, s.times(av, bv)));
                                stats.new_entries += 1;
                            }
                        }
                    }
                }
                if stream_cycles == 0 {
                    continue; // no work in this panel
                }
                if !first_active_panel {
                    stats.cycles += self.panel_switch_cycles;
                }
                first_active_panel = false;

                // Drain finished columns (parallel across the tile; panels
                // cover disjoint row ranges, so results concatenate).
                let mut max_drain = 0u64;
                for t in 0..width {
                    let mut drain = 0u64;
                    flush_cam(&s, &mut cam[t], &mut spill[t], &mut merged);
                    for &(r, v) in spill[t].iter() {
                        if !s.is_zero(v) {
                            out.push(r, tile_start + t, v).expect("in range");
                        }
                        drain += 1;
                        stats.mem_writes += 1;
                    }
                    spill[t].clear();
                    max_drain = max_drain.max(drain);
                }

                let busiest = col_work[..width].iter().copied().max().unwrap_or(0);
                stats.cycles += stream_cycles.max(busiest) + max_drain;
            }
        }

        Ok(AccelResult {
            product: out.to_csc(),
            stats,
        })
    }
}

/// Accumulates a column's CAM contents into its row-sorted spill area
/// and empties the CAM, reusing `merged` as scratch so no call
/// allocates in steady state. CAM rows are unique, so per-row values
/// are independent of merge order.
fn flush_cam<S: Semiring>(
    s: &S,
    cam: &mut Vec<(usize, f64)>,
    spill: &mut Vec<(usize, f64)>,
    merged: &mut Vec<(usize, f64)>,
) {
    if cam.is_empty() {
        return;
    }
    cam.sort_unstable_by_key(|&(r, _)| r);
    merged.clear();
    merged.reserve(spill.len() + cam.len());
    let (mut i, mut j) = (0, 0);
    while i < spill.len() && j < cam.len() {
        let (rs, vs) = spill[i];
        let (rc, vc) = cam[j];
        match rs.cmp(&rc) {
            std::cmp::Ordering::Less => {
                merged.push((rs, vs));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push((rc, s.plus(s.zero(), vc)));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push((rs, s.plus(vs, vc)));
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&spill[i..]);
    for &(r, v) in &cam[j..] {
        merged.push((r, s.plus(s.zero(), v)));
    }
    std::mem::swap(spill, merged);
    cam.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatrixGen;
    use crate::reference::spgemm;

    #[test]
    fn product_matches_reference() {
        let a = MatrixGen::erdos_renyi(96, 6.0, 21).to_csc();
        let b = MatrixGen::erdos_renyi(96, 6.0, 22).to_csc();
        let expect = spgemm(&a, &b).unwrap();
        let got = LimCamAccelerator::paper_chip().multiply(&a, &b).unwrap();
        assert!(got.product.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn parallel_tiles_beat_serial_product_count() {
        let a = MatrixGen::banded(64, 1, 3).to_csc();
        let res = LimCamAccelerator::paper_chip().multiply(&a, &a).unwrap();
        let work = a.multiply_work(&a).unwrap() as u64;
        assert_eq!(res.stats.multiplies, work);
        // No overflows on a banded matrix (≤ 5 distinct rows per column).
        assert_eq!(res.stats.overflow_flushes, 0);
        // The 32 columns work concurrently on shared streams: cycles land
        // strictly below one-per-product, but above the per-tile lower
        // bound (streams are serialized on the input port).
        assert!(
            res.stats.cycles < work + res.product.nnz() as u64,
            "parallel tiles should beat serial operation"
        );
        assert!(res.stats.cycles > 0);
    }

    #[test]
    fn tile_cycles_bounded_by_stream_and_busiest_column() {
        // One tile (32 columns), uniform band: cycles ≈ streams + drain.
        let a = MatrixGen::banded(32, 1, 3).to_csc();
        let res = LimCamAccelerator::paper_chip().multiply(&a, &a).unwrap();
        // Streams = every A column used by the tile, each once = nnz(A).
        let streams = a.nnz() as u64;
        let max_drain = (0..32).map(|c| a.col_nnz(c) as u64).max().unwrap() + 2;
        assert!(
            res.stats.cycles <= streams + max_drain + 8,
            "cycles {} vs streams {streams} + drain bound",
            res.stats.cycles
        );
    }

    #[test]
    fn overflow_flushes_do_not_corrupt_result() {
        // Dense-ish columns exceed 16 CAM entries and force flushes.
        let a = MatrixGen::block_diagonal(64, 32, 0.9, 4).to_csc();
        let chip = LimCamAccelerator::paper_chip();
        let res = chip.multiply(&a, &a).unwrap();
        assert!(res.stats.overflow_flushes > 0);
        let expect = spgemm(&a, &a).unwrap();
        assert!(res.product.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn bigger_cam_fewer_flushes() {
        let a = MatrixGen::block_diagonal(64, 32, 0.9, 4).to_csc();
        let small = LimCamAccelerator::new(32, 8).unwrap().multiply(&a, &a).unwrap();
        let large = LimCamAccelerator::new(32, 64).unwrap().multiply(&a, &a).unwrap();
        assert!(large.stats.overflow_flushes < small.stats.overflow_flushes);
        assert!(large.stats.cycles < small.stats.cycles);
    }

    #[test]
    fn zero_config_rejected() {
        assert!(LimCamAccelerator::new(0, 16).is_err());
        assert!(LimCamAccelerator::new(32, 0).is_err());
    }

    #[test]
    fn tall_matrices_use_row_panels_and_stay_correct() {
        // 2048 rows with 10-bit indices: two panels per tile.
        let a = MatrixGen::erdos_renyi(2048, 4.0, 77).to_csc();
        let chip = LimCamAccelerator::paper_chip();
        assert_eq!(chip.panel_rows(), 1024);
        let res = chip.multiply(&a, &a).unwrap();
        let expect = spgemm(&a, &a).unwrap();
        assert!(res.product.approx_eq(&expect, 1e-9));

        // A wider index (one panel) does the same multiplies with fewer
        // or equal cycles (no panel switches, coarser streams).
        let wide = LimCamAccelerator {
            key_bits: 11,
            ..chip
        };
        let res_wide = wide.multiply(&a, &a).unwrap();
        assert_eq!(res_wide.stats.multiplies, res.stats.multiplies);
        assert!(res_wide.stats.cycles <= res.stats.cycles);
    }
}
