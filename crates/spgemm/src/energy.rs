//! Chip power models: cycles → latency and energy.
//!
//! Fig. 6 back-annotates cycle counts with the measured silicon operating
//! points: the LiM chip at 475 MHz / 72 mW per clock, the baseline at
//! 725 MHz / 96 mW. The same structure accepts the operating point of a
//! block synthesized by our own physical flow, so the bench binaries can
//! run either anchored to the paper's silicon or fully self-derived.

use lim::LimBlock;
use lim_tech::units::{Megahertz, Milliwatts};

/// Frequency/power operating point of one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipPowerModel {
    /// Operating clock frequency.
    pub fmax: Megahertz,
    /// Average power at that frequency.
    pub power: Milliwatts,
}

impl ChipPowerModel {
    /// The paper's measured LiM CAM-SpGEMM chip: 475 MHz, 72 mW.
    pub fn paper_lim() -> Self {
        ChipPowerModel {
            fmax: Megahertz::new(475.0),
            power: Milliwatts::new(72.0),
        }
    }

    /// The paper's measured non-LiM baseline chip: 725 MHz, 96 mW.
    pub fn paper_heap() -> Self {
        ChipPowerModel {
            fmax: Megahertz::new(725.0),
            power: Milliwatts::new(96.0),
        }
    }

    /// Operating point of a block synthesized by the LiM flow.
    pub fn from_block(block: &LimBlock) -> Self {
        ChipPowerModel {
            fmax: block.report.fmax,
            power: block.report.power.total(),
        }
    }

    /// Wall-clock latency of `cycles` in microseconds.
    pub fn latency(&self, cycles: u64) -> f64 {
        cycles as f64 / self.fmax.value() // µs = cycles / MHz
    }

    /// Energy of `cycles` in nanojoules: `P · t`.
    pub fn energy(&self, cycles: u64) -> f64 {
        // mW · µs = nJ.
        self.power.value() * self.latency(cycles)
    }
}

/// Latency/energy comparison of the two chips on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipComparison {
    /// LiM chip latency, µs.
    pub lim_latency_us: f64,
    /// Baseline latency, µs.
    pub heap_latency_us: f64,
    /// LiM chip energy, nJ.
    pub lim_energy_nj: f64,
    /// Baseline energy, nJ.
    pub heap_energy_nj: f64,
}

impl ChipComparison {
    /// Builds the comparison from the two cycle counts and chip models.
    pub fn new(
        lim_chip: &ChipPowerModel,
        lim_cycles: u64,
        heap_chip: &ChipPowerModel,
        heap_cycles: u64,
    ) -> Self {
        ChipComparison {
            lim_latency_us: lim_chip.latency(lim_cycles),
            heap_latency_us: heap_chip.latency(heap_cycles),
            lim_energy_nj: lim_chip.energy(lim_cycles),
            heap_energy_nj: heap_chip.energy(heap_cycles),
        }
    }

    /// Latency advantage of the LiM chip (the `7x–250x` of Fig. 6).
    pub fn speedup(&self) -> f64 {
        self.heap_latency_us / self.lim_latency_us
    }

    /// Energy advantage of the LiM chip (the `10x–310x` of Fig. 6).
    pub fn energy_saving(&self) -> f64 {
        self.heap_energy_nj / self.lim_energy_nj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_reproduce_units() {
        let lim = ChipPowerModel::paper_lim();
        // 475 cycles at 475 MHz = 1 µs; 72 mW for 1 µs = 72 nJ.
        assert!((lim.latency(475) - 1.0).abs() < 1e-12);
        assert!((lim.energy(475) - 72.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_ratios() {
        let cmp = ChipComparison::new(
            &ChipPowerModel::paper_lim(),
            1_000,
            &ChipPowerModel::paper_heap(),
            100_000,
        );
        // Cycle ratio 100, frequency ratio 475/725 → speedup ≈ 65.5.
        assert!((cmp.speedup() - 100.0 * 475.0 / 725.0).abs() < 1e-6);
        // Energy improves further by the power ratio 96/72.
        assert!(cmp.energy_saving() > cmp.speedup());
    }
}
