//! Sparse matrix–matrix multiplication (SpGEMM) on LiM hardware:
//! the paper's driving application (§4–§5).
//!
//! SpGEMM is the core primitive of graph algorithms (contraction,
//! shortest paths) expressed in the language of linear algebra. The paper
//! implements two 65 nm accelerator chips — a **LiM CAM-based** design
//! (single-cycle index matching, Fig. 5) and a **heap/FIFO-based**
//! baseline (multi-way merge with sequential shifting) — and measures
//! 7x–250x latency and 10x–310x energy advantages for the LiM chip over
//! a sparse-matrix benchmark suite (Fig. 6).
//!
//! This crate rebuilds that experiment end to end:
//!
//! * [`matrix`] — COO/CSC/DCSC sparse formats with validation.
//! * [`gen`] — seeded generators (Erdős–Rényi, R-MAT power-law graphs,
//!   meshes, banded and block matrices): the offline substitute for the
//!   University of Florida collection.
//! * [`reference`](mod@crate::reference) — a host column-by-column SpGEMM used as the
//!   correctness oracle for both accelerators.
//! * [`accel`] — cycle-level simulators of the two chips, sharing one
//!   accounting framework; both produce the *same numerical product* and
//!   are checked against the oracle.
//! * [`energy`] — chip power models (from the physically synthesized
//!   cores, or the paper's silicon operating points) turning cycle counts
//!   into latency and energy.
//! * [`suite`] — the named benchmark suite driving the Fig. 6
//!   reproduction.
//!
//! # Examples
//!
//! ```
//! use lim_spgemm::gen::MatrixGen;
//! use lim_spgemm::accel::{lim_cam::LimCamAccelerator, heap::HeapAccelerator};
//! use lim_spgemm::energy::ChipPowerModel;
//!
//! # fn main() -> Result<(), lim_spgemm::SpgemmError> {
//! let a = MatrixGen::erdos_renyi(256, 8.0, 42).to_csc();
//! let lim = LimCamAccelerator::paper_chip().multiply(&a, &a)?;
//! let heap = HeapAccelerator::paper_chip().multiply(&a, &a)?;
//! assert!(heap.stats.cycles > lim.stats.cycles);
//!
//! let lim_chip = ChipPowerModel::paper_lim();
//! let heap_chip = ChipPowerModel::paper_heap();
//! let speedup = heap_chip.latency(heap.stats.cycles)
//!     / lim_chip.latency(lim.stats.cycles);
//! assert!(speedup > 1.0);
//! # Ok(())
//! # }
//! ```

pub mod accel;
pub mod apps;
pub mod codesign;
pub mod dram;
pub mod energy;
pub mod error;
pub mod gen;
pub mod io;
pub mod matrix;
pub mod reference;
pub mod semiring;
pub mod suite;

pub use energy::ChipPowerModel;
pub use error::SpgemmError;
pub use matrix::{Csc, Triplets};
