//! Host reference SpGEMM: the correctness oracle.
//!
//! Column-by-column (Gustavson) multiplication with a dense accumulator —
//! the textbook algorithm both accelerators must reproduce numerically.

use crate::error::SpgemmError;
use crate::matrix::{Csc, Triplets};
use crate::semiring::{Arithmetic, Semiring};

/// Computes `C = A · B` on the host over ordinary arithmetic.
///
/// # Errors
///
/// Returns [`SpgemmError::DimensionMismatch`] when `A.cols() != B.rows()`.
pub fn spgemm(a: &Csc, b: &Csc) -> Result<Csc, SpgemmError> {
    spgemm_with(Arithmetic, a, b)
}

/// Computes `C = A ⊕.⊗ B` over an arbitrary [`Semiring`] — absent
/// entries read as the semiring's zero (∞ for min-plus, etc.).
///
/// # Errors
///
/// Returns [`SpgemmError::DimensionMismatch`] when `A.cols() != B.rows()`.
pub fn spgemm_with<S: Semiring>(s: S, a: &Csc, b: &Csc) -> Result<Csc, SpgemmError> {
    if a.cols() != b.rows() {
        return Err(SpgemmError::DimensionMismatch {
            left_cols: a.cols(),
            right_rows: b.rows(),
        });
    }
    let mut out = Triplets::new(a.rows(), b.cols());
    let mut acc: Vec<f64> = vec![s.zero(); a.rows()];
    let mut touched: Vec<usize> = Vec::new();
    for j in 0..b.cols() {
        for (k, bv) in b.column(j) {
            for (i, av) in a.column(k) {
                if s.is_zero(acc[i]) && !touched.contains(&i) {
                    touched.push(i);
                }
                acc[i] = s.plus(acc[i], s.times(av, bv));
            }
        }
        for &i in &touched {
            if !s.is_zero(acc[i]) {
                out.push(i, j, acc[i]).expect("in range");
            }
            acc[i] = s.zero();
        }
        touched.clear();
    }
    Ok(out.to_csc())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatrixGen;

    #[allow(clippy::needless_range_loop)] // out[i][j] mirrors the math
    fn dense_mul(a: &Csc, b: &Csc) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; b.cols()]; a.rows()];
        for j in 0..b.cols() {
            for (k, bv) in b.column(j) {
                for (i, av) in a.column(k) {
                    out[i][j] += av * bv;
                }
            }
        }
        out
    }

    #[test]
    fn matches_dense_multiply() {
        let a = MatrixGen::erdos_renyi(48, 4.0, 11).to_csc();
        let b = MatrixGen::erdos_renyi(48, 4.0, 12).to_csc();
        let c = spgemm(&a, &b).unwrap();
        let dense = dense_mul(&a, &b);
        for (i, dense_row) in dense.iter().enumerate() {
            for (j, &expect) in dense_row.iter().enumerate() {
                assert!(
                    (c.get(i, j) - expect).abs() < 1e-9,
                    "mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = MatrixGen::erdos_renyi(32, 3.0, 5).to_csc();
        let ident = {
            let mut t = Triplets::new(32, 32);
            for i in 0..32 {
                t.push(i, i, 1.0).unwrap();
            }
            t.to_csc()
        };
        assert!(spgemm(&a, &ident).unwrap().approx_eq(&a, 1e-12));
        assert!(spgemm(&ident, &a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn dimension_mismatch() {
        let a = Csc::zero(4, 5);
        let b = Csc::zero(4, 5);
        assert!(matches!(
            spgemm(&a, &b),
            Err(SpgemmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_times_anything_is_zero() {
        let a = Csc::zero(8, 8);
        let b = MatrixGen::erdos_renyi(8, 2.0, 1).to_csc();
        assert_eq!(spgemm(&a, &b).unwrap().nnz(), 0);
    }
}
