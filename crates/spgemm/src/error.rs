//! Error type for sparse-matrix construction and accelerator simulation.

use std::error::Error;
use std::fmt;

/// Errors raised by the SpGEMM infrastructure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpgemmError {
    /// A triplet referenced a coordinate outside the matrix.
    IndexOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Matrix rows.
        rows: usize,
        /// Matrix cols.
        cols: usize,
    },
    /// Inner dimensions of a product do not agree.
    DimensionMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// An accelerator configuration is invalid.
    BadAccelerator {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SpgemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpgemmError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "entry ({row}, {col}) outside {rows}x{cols} matrix"),
            SpgemmError::DimensionMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "cannot multiply: left has {left_cols} columns, right has {right_rows} rows"
            ),
            SpgemmError::BadAccelerator { reason } => {
                write!(f, "bad accelerator configuration: {reason}")
            }
        }
    }
}

impl Error for SpgemmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SpgemmError::DimensionMismatch {
            left_cols: 3,
            right_rows: 4,
        };
        assert!(e.to_string().contains("3 columns"));
    }
}
