//! Graph kernels on the SpGEMM accelerators.
//!
//! The paper motivates SpGEMM as "a core primitive in graph processing
//! applications such as graph contraction or shortest-path algorithms"
//! (§1, after Kepner & Gilbert). This module expresses those kernels in
//! the language of linear algebra and runs them through the cycle-level
//! chips, so whole-application latency and energy can be compared — not
//! just the raw primitive.

use crate::accel::heap::HeapAccelerator;
use crate::accel::lim_cam::LimCamAccelerator;
use crate::accel::AccelStats;
use crate::error::SpgemmError;
use crate::matrix::{Csc, Triplets};
use crate::semiring::MinPlus;

/// Which chip executes a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chip {
    /// The LiM CAM accelerator.
    LimCam,
    /// The heap/FIFO baseline.
    Heap,
}

/// A kernel run: the numerical result plus accumulated hardware events
/// over every SpGEMM invocation the kernel made.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun<T> {
    /// The kernel's answer.
    pub result: T,
    /// Event counts accumulated over all accelerator calls.
    pub stats: AccelStats,
}

fn run_product(chip: Chip, a: &Csc, b: &Csc) -> Result<(Csc, AccelStats), SpgemmError> {
    match chip {
        Chip::LimCam => {
            let r = LimCamAccelerator::paper_chip().multiply(a, b)?;
            Ok((r.product, r.stats))
        }
        Chip::Heap => {
            let r = HeapAccelerator::paper_chip().multiply(a, b)?;
            Ok((r.product, r.stats))
        }
    }
}

fn add_stats(total: &mut AccelStats, s: &AccelStats) {
    total.cycles += s.cycles;
    total.multiplies += s.multiplies;
    total.cam_matches += s.cam_matches;
    total.new_entries += s.new_entries;
    total.shift_cycles += s.shift_cycles;
    total.overflow_flushes += s.overflow_flushes;
    total.mem_reads += s.mem_reads;
    total.mem_writes += s.mem_writes;
}

/// Sparse matrix–vector product `y = A·x` on the accelerator (the vector
/// rides as a one-column matrix).
///
/// # Errors
///
/// Returns [`SpgemmError::DimensionMismatch`] when `x.len() != A.cols()`.
pub fn spmv(chip: Chip, a: &Csc, x: &[f64]) -> Result<KernelRun<Vec<f64>>, SpgemmError> {
    if x.len() != a.cols() {
        return Err(SpgemmError::DimensionMismatch {
            left_cols: a.cols(),
            right_rows: x.len(),
        });
    }
    let mut t = Triplets::new(x.len(), 1);
    for (i, &v) in x.iter().enumerate() {
        if v != 0.0 {
            t.push(i, 0, v)?;
        }
    }
    let (product, stats) = run_product(chip, a, &t.to_csc())?;
    let mut y = vec![0.0; a.rows()];
    for (r, v) in product.column(0) {
        y[r] = v;
    }
    Ok(KernelRun { result: y, stats })
}

/// Graph contraction `C = Sᵀ · A · S` (the paper's named application):
/// `clusters[v]` assigns vertex `v` to a supervertex; the result is the
/// contracted adjacency with summed edge weights. Two accelerator
/// products.
///
/// # Errors
///
/// Returns [`SpgemmError::DimensionMismatch`] on a wrong-length cluster
/// map or [`SpgemmError::IndexOutOfBounds`] for an out-of-range cluster.
pub fn graph_contraction(
    chip: Chip,
    adjacency: &Csc,
    clusters: &[usize],
    n_clusters: usize,
) -> Result<KernelRun<Csc>, SpgemmError> {
    if clusters.len() != adjacency.cols() {
        return Err(SpgemmError::DimensionMismatch {
            left_cols: adjacency.cols(),
            right_rows: clusters.len(),
        });
    }
    // Selector S: n x k, S[v, clusters[v]] = 1.
    let mut s = Triplets::new(adjacency.cols(), n_clusters);
    for (v, &c) in clusters.iter().enumerate() {
        if c >= n_clusters {
            return Err(SpgemmError::IndexOutOfBounds {
                row: v,
                col: c,
                rows: adjacency.cols(),
                cols: n_clusters,
            });
        }
        s.push(v, c, 1.0)?;
    }
    let s = s.to_csc();
    let st = s.transpose();

    let mut stats = AccelStats::default();
    let (a_s, s1) = run_product(chip, adjacency, &s)?;
    add_stats(&mut stats, &s1);
    let (contracted, s2) = run_product(chip, &st, &a_s)?;
    add_stats(&mut stats, &s2);
    Ok(KernelRun {
        result: contracted,
        stats,
    })
}

/// Triangle count of an undirected graph via `trace(A³)/6`. Two
/// accelerator products plus a host trace.
///
/// # Errors
///
/// Propagates accelerator failures.
pub fn triangle_count(chip: Chip, adjacency: &Csc) -> Result<KernelRun<u64>, SpgemmError> {
    let mut stats = AccelStats::default();
    let (a2, s1) = run_product(chip, adjacency, adjacency)?;
    add_stats(&mut stats, &s1);
    let (a3, s2) = run_product(chip, &a2, adjacency)?;
    add_stats(&mut stats, &s2);
    let trace: f64 = (0..a3.cols().min(a3.rows())).map(|i| a3.get(i, i)).sum();
    Ok(KernelRun {
        result: (trace / 6.0).round() as u64,
        stats,
    })
}

/// All-pairs shortest paths limited to `2^k`-hop routes, by repeated
/// min-plus squaring `D ← D ⊗ D` on the accelerator — the
/// "shortest-path algorithms" of the paper's introduction, running on the
/// *same* hardware as numerical SpGEMM (the generalized ⊗/⊕ block).
///
/// `weights` must carry non-negative edge weights; the result's entry
/// `(i, j)` is the cheapest path cost within the hop budget (absent =
/// unreachable).
///
/// # Errors
///
/// Propagates accelerator failures.
pub fn shortest_paths(
    chip: Chip,
    weights: &Csc,
    k_squarings: usize,
) -> Result<KernelRun<Csc>, SpgemmError> {
    // D₀ = W with a zero-cost diagonal (staying put is free). Zero-cost
    // self-loops must survive sparsification, so we store them as explicit
    // entries; min-plus zero (∞) is the absent value.
    let n = weights.rows();
    let mut t = Triplets::new(n, weights.cols());
    for c in 0..weights.cols() {
        for (r, v) in weights.column(c) {
            if r != c {
                t.push(r, c, v)?;
            }
        }
    }
    // Diagonal epsilon: exact 0.0 would be dropped by the sparse builder,
    // so the "free" self-loop rides as a negligible cost.
    for i in 0..n.min(weights.cols()) {
        t.push(i, i, 1e-12)?;
    }
    let mut d = t.to_csc();
    let mut stats = AccelStats::default();
    for _ in 0..k_squarings {
        let (next, s) = match chip {
            Chip::LimCam => {
                let r = LimCamAccelerator::paper_chip().multiply_with(MinPlus, &d, &d)?;
                (r.product, r.stats)
            }
            Chip::Heap => {
                let r = HeapAccelerator::paper_chip().multiply_with(MinPlus, &d, &d)?;
                (r.product, r.stats)
            }
        };
        add_stats(&mut stats, &s);
        d = next;
    }
    Ok(KernelRun { result: d, stats })
}

/// `k` rounds of unweighted BFS frontier expansion from `source`:
/// `f' = A·f` with reached-set masking on the host. Returns the set of
/// vertices reached within `k` hops.
///
/// # Errors
///
/// Propagates accelerator failures.
pub fn bfs_levels(
    chip: Chip,
    adjacency: &Csc,
    source: usize,
    k: usize,
) -> Result<KernelRun<Vec<bool>>, SpgemmError> {
    let n = adjacency.cols();
    let mut reached = vec![false; n];
    reached[source] = true;
    let mut frontier: Vec<usize> = vec![source];
    let mut stats = AccelStats::default();
    for _ in 0..k {
        if frontier.is_empty() {
            break;
        }
        let mut f = Triplets::new(n, 1);
        for &v in &frontier {
            f.push(v, 0, 1.0)?;
        }
        let (next, s) = run_product(chip, adjacency, &f.to_csc())?;
        add_stats(&mut stats, &s);
        frontier = next
            .column(0)
            .map(|(r, _)| r)
            .filter(|&r| !reached[r])
            .collect();
        for &r in &frontier {
            reached[r] = true;
        }
    }
    Ok(KernelRun {
        result: reached,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatrixGen;
    use crate::reference::spgemm;

    fn ring(n: usize) -> Csc {
        // Undirected ring: triangle-free.
        let mut t = Triplets::new(n, n);
        for v in 0..n {
            t.push(v, (v + 1) % n, 1.0).unwrap();
            t.push((v + 1) % n, v, 1.0).unwrap();
        }
        t.to_csc()
    }

    fn clique(n: usize) -> Csc {
        let mut t = Triplets::new(n, n);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    t.push(a, b, 1.0).unwrap();
                }
            }
        }
        t.to_csc()
    }

    #[test]
    fn spmv_matches_host() {
        let a = MatrixGen::erdos_renyi(64, 5.0, 3).to_csc();
        let x: Vec<f64> = (0..64).map(|i| (i % 7) as f64 * 0.5).collect();
        let run = spmv(Chip::LimCam, &a, &x).unwrap();
        for i in 0..64 {
            let expect: f64 = (0..64).map(|k| a.get(i, k) * x[k]).sum();
            assert!((run.result[i] - expect).abs() < 1e-9, "row {i}");
        }
        assert!(run.stats.cycles > 0);
    }

    #[test]
    fn triangle_counts_are_exact() {
        // Ring: 0 triangles; K5: C(5,3) = 10 triangles.
        assert_eq!(triangle_count(Chip::LimCam, &ring(12)).unwrap().result, 0);
        assert_eq!(triangle_count(Chip::LimCam, &clique(5)).unwrap().result, 10);
        assert_eq!(triangle_count(Chip::Heap, &clique(5)).unwrap().result, 10);
    }

    #[test]
    fn contraction_sums_cluster_edges() {
        // Two clusters over a 4-clique: contracted graph has all weight
        // between and within the two supervertices.
        let a = clique(4);
        let clusters = [0usize, 0, 1, 1];
        let run = graph_contraction(Chip::LimCam, &a, &clusters, 2).unwrap();
        let c = &run.result;
        // Within cluster 0: edges (0,1) and (1,0) → weight 2.
        assert_eq!(c.get(0, 0), 2.0);
        assert_eq!(c.get(1, 1), 2.0);
        // Across: 2 vertices x 2 vertices = weight 4 each direction.
        assert_eq!(c.get(0, 1), 4.0);
        assert_eq!(c.get(1, 0), 4.0);
        // And it matches the host oracle.
        let mut s = Triplets::new(4, 2);
        for (v, &cl) in clusters.iter().enumerate() {
            s.push(v, cl, 1.0).unwrap();
        }
        let s = s.to_csc();
        let oracle = spgemm(&s.transpose(), &spgemm(&a, &s).unwrap()).unwrap();
        assert!(c.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn bfs_reaches_the_ring_in_hops() {
        let a = ring(16);
        let run = bfs_levels(Chip::LimCam, &a, 0, 3).unwrap();
        // Within 3 hops of vertex 0 on a ring: {0, ±1, ±2, ±3}.
        let reached: Vec<usize> = run
            .result
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(reached, vec![0, 1, 2, 3, 13, 14, 15]);
    }

    #[test]
    fn shortest_paths_on_a_weighted_line() {
        // Line graph 0-1-2-3-4 with weights 1, 2, 3, 4 (both directions).
        let n = 5;
        let mut t = Triplets::new(n, n);
        for v in 0..n - 1 {
            let w = (v + 1) as f64;
            t.push(v, v + 1, w).unwrap();
            t.push(v + 1, v, w).unwrap();
        }
        let g = t.to_csc();
        // Two squarings cover 4-hop paths: the full line.
        let run = shortest_paths(Chip::LimCam, &g, 2).unwrap();
        let d = &run.result;
        let dist = |a: usize, b: usize| d.get(a, b);
        assert!((dist(0, 1) - 1.0).abs() < 1e-6);
        assert!((dist(0, 2) - 3.0).abs() < 1e-6); // 1 + 2
        assert!((dist(0, 4) - 10.0).abs() < 1e-6); // 1+2+3+4
        assert!(dist(0, 0) < 1e-6); // staying is free
        // Both chips agree.
        let heap = shortest_paths(Chip::Heap, &g, 2).unwrap();
        assert!(run.result.approx_eq(&heap.result, 1e-6));
        // Matches the host min-plus oracle.
        let host = {
            let mut d = run_host_minplus_base(&g);
            for _ in 0..2 {
                d = crate::reference::spgemm_with(crate::semiring::MinPlus, &d, &d).unwrap();
            }
            d
        };
        assert!(run.result.approx_eq(&host, 1e-6));
    }

    fn run_host_minplus_base(g: &Csc) -> Csc {
        let n = g.rows();
        let mut t = Triplets::new(n, n);
        for c in 0..n {
            for (r, v) in g.column(c) {
                if r != c {
                    t.push(r, c, v).unwrap();
                }
            }
        }
        for i in 0..n {
            t.push(i, i, 1e-12).unwrap();
        }
        t.to_csc()
    }

    #[test]
    fn min_plus_unreachable_stays_absent() {
        // Two disconnected edges: 0-1 and 2-3.
        let mut t = Triplets::new(4, 4);
        t.push(0, 1, 1.0).unwrap();
        t.push(1, 0, 1.0).unwrap();
        t.push(2, 3, 2.0).unwrap();
        t.push(3, 2, 2.0).unwrap();
        let g = t.to_csc();
        let run = shortest_paths(Chip::LimCam, &g, 3).unwrap();
        assert_eq!(run.result.get(0, 3), 0.0, "absent entry reads 0 via get");
        // Structurally absent: column 3 holds only rows 2 and 3.
        let col3: Vec<usize> = run.result.column(3).map(|(r, _)| r).collect();
        assert_eq!(col3, vec![2, 3]);
    }

    #[test]
    fn lim_kernels_cost_fewer_cycles_than_heap() {
        let a = MatrixGen::rmat(256, 4096, 0.57, 0.19, 0.19, 21).to_csc();
        let lim = triangle_count(Chip::LimCam, &a).unwrap();
        let heap = triangle_count(Chip::Heap, &a).unwrap();
        assert_eq!(lim.result, heap.result);
        assert!(heap.stats.cycles > 3 * lim.stats.cycles);
    }

    #[test]
    fn bad_inputs_rejected() {
        let a = ring(8);
        assert!(spmv(Chip::LimCam, &a, &[1.0; 3]).is_err());
        assert!(graph_contraction(Chip::LimCam, &a, &[0; 3], 2).is_err());
        assert!(graph_contraction(Chip::LimCam, &a, &[9; 8], 2).is_err());
    }
}
