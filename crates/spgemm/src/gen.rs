//! Seeded sparse-matrix generators: the offline substitute for the
//! University of Florida collection.
//!
//! Fig. 6's benchmarks span uniform sparse graphs, power-law graphs with
//! hub columns (where multi-way merges grow wide and the FIFO baseline
//! collapses), regular meshes and dense-ish blocks. Each generator is
//! deterministic for a given seed.

use crate::matrix::{Csc, Triplets};
use lim_testkit::TestRng;

/// Namespace for the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixGen;

impl MatrixGen {
    /// Erdős–Rényi digraph adjacency: `n x n`, expected `avg_degree`
    /// nonzeros per column, uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn erdos_renyi(n: usize, avg_degree: f64, seed: u64) -> Triplets {
        assert!(n > 0, "matrix dimension must be positive");
        let mut rng = TestRng::seed_from_u64(seed);
        let mut t = Triplets::new(n, n);
        let total = (n as f64 * avg_degree).round() as usize;
        for _ in 0..total {
            let r = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            let v = rng.gen_range(0.1..1.0);
            t.push(r, c, v).expect("in range");
        }
        t
    }

    /// R-MAT power-law graph (Chakrabarti et al. parameters): `n` must be
    /// a power of two; `edges` samples with quadrant probabilities
    /// `(a, b, c)` (d = 1−a−b−c). Hub rows/columns emerge naturally.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or the probabilities are
    /// invalid.
    pub fn rmat(n: usize, edges: usize, a: f64, b: f64, c: f64, seed: u64) -> Triplets {
        assert!(n.is_power_of_two() && n > 1, "rmat needs a power-of-two n");
        let d = 1.0 - a - b - c;
        assert!(
            a > 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
            "invalid rmat probabilities"
        );
        let mut rng = TestRng::seed_from_u64(seed);
        let mut t = Triplets::new(n, n);
        let levels = n.trailing_zeros();
        for _ in 0..edges {
            let (mut r, mut ccol) = (0usize, 0usize);
            for _ in 0..levels {
                r <<= 1;
                ccol <<= 1;
                let x: f64 = rng.gen();
                if x < a {
                    // top-left
                } else if x < a + b {
                    ccol |= 1;
                } else if x < a + b + c {
                    r |= 1;
                } else {
                    r |= 1;
                    ccol |= 1;
                }
            }
            t.push(r, ccol, rng.gen_range(0.1..1.0)).expect("in range");
        }
        t
    }

    /// Five-point 2-D mesh Laplacian on a `side x side` grid
    /// (`n = side²`): the classic regular-stencil benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn mesh_laplacian(side: usize) -> Triplets {
        assert!(side > 0, "mesh side must be positive");
        let n = side * side;
        let mut t = Triplets::new(n, n);
        let idx = |x: usize, y: usize| y * side + x;
        for y in 0..side {
            for x in 0..side {
                let i = idx(x, y);
                t.push(i, i, 4.0).expect("in range");
                if x > 0 {
                    t.push(i, idx(x - 1, y), -1.0).expect("in range");
                }
                if x + 1 < side {
                    t.push(i, idx(x + 1, y), -1.0).expect("in range");
                }
                if y > 0 {
                    t.push(i, idx(x, y - 1), -1.0).expect("in range");
                }
                if y + 1 < side {
                    t.push(i, idx(x, y + 1), -1.0).expect("in range");
                }
            }
        }
        t
    }

    /// Banded matrix: `n x n` with `band` diagonals on each side.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn banded(n: usize, band: usize, seed: u64) -> Triplets {
        assert!(n > 0, "matrix dimension must be positive");
        let mut rng = TestRng::seed_from_u64(seed);
        let mut t = Triplets::new(n, n);
        for c in 0..n {
            let lo = c.saturating_sub(band);
            let hi = (c + band + 1).min(n);
            for r in lo..hi {
                t.push(r, c, rng.gen_range(0.1..1.0)).expect("in range");
            }
        }
        t
    }

    /// Block-diagonal matrix of dense `block x block` tiles — the
    /// densifying pattern of contracted graphs, with wide merge columns.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `block == 0`, or `block` does not divide `n`.
    pub fn block_diagonal(n: usize, block: usize, fill: f64, seed: u64) -> Triplets {
        assert!(n > 0 && block > 0 && n.is_multiple_of(block), "block must divide n");
        let mut rng = TestRng::seed_from_u64(seed);
        let mut t = Triplets::new(n, n);
        for b in 0..(n / block) {
            let base = b * block;
            for r in 0..block {
                for c in 0..block {
                    if rng.gen::<f64>() < fill {
                        t.push(base + r, base + c, rng.gen_range(0.1..1.0))
                            .expect("in range");
                    }
                }
            }
        }
        t
    }

    /// A hub matrix: mostly sparse uniform structure plus `hubs` columns
    /// that are `hub_degree` dense — the adversarial case for FIFO-based
    /// multi-way merging (merge width explodes on hub columns).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hub_degree > n`.
    pub fn hub(n: usize, avg_degree: f64, hubs: usize, hub_degree: usize, seed: u64) -> Triplets {
        assert!(n > 0 && hub_degree <= n, "hub degree must fit the matrix");
        let mut rng = TestRng::seed_from_u64(seed);
        let mut t = Self::erdos_renyi(n, avg_degree, seed ^ 0x9e37_79b9);
        for h in 0..hubs {
            let col = (h * 31) % n;
            let mut placed = 0usize;
            while placed < hub_degree {
                let r = rng.gen_range(0..n);
                t.push(r, col, rng.gen_range(0.1..1.0)).expect("in range");
                placed += 1;
            }
        }
        t
    }
}

/// Summary statistics used when reporting benchmark matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Matrix dimension (square benchmarks).
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Mean nonzeros per column.
    pub avg_col_nnz: f64,
    /// Maximum nonzeros in any column (merge width driver).
    pub max_col_nnz: usize,
}

impl MatrixStats {
    /// Computes statistics of `m`.
    pub fn of(m: &Csc) -> Self {
        let max = (0..m.cols()).map(|c| m.col_nnz(c)).max().unwrap_or(0);
        MatrixStats {
            n: m.cols(),
            nnz: m.nnz(),
            avg_col_nnz: if m.cols() == 0 {
                0.0
            } else {
                m.nnz() as f64 / m.cols() as f64
            },
            max_col_nnz: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_density_close_to_target() {
        let m = MatrixGen::erdos_renyi(512, 8.0, 1).to_csc();
        let stats = MatrixStats::of(&m);
        // Duplicates collapse, so slightly below the target.
        assert!(stats.avg_col_nnz > 6.0 && stats.avg_col_nnz <= 8.0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn generators_deterministic() {
        let a = MatrixGen::erdos_renyi(128, 4.0, 7).to_csc();
        let b = MatrixGen::erdos_renyi(128, 4.0, 7).to_csc();
        assert!(a.approx_eq(&b, 0.0));
        let c = MatrixGen::erdos_renyi(128, 4.0, 8).to_csc();
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn rmat_is_skewed() {
        let m = MatrixGen::rmat(1024, 8 * 1024, 0.57, 0.19, 0.19, 3).to_csc();
        let stats = MatrixStats::of(&m);
        // Power-law: the max column is far above the average.
        assert!(
            stats.max_col_nnz as f64 > 4.0 * stats.avg_col_nnz,
            "max {} vs avg {}",
            stats.max_col_nnz,
            stats.avg_col_nnz
        );
    }

    #[test]
    fn mesh_laplacian_pattern() {
        let m = MatrixGen::mesh_laplacian(8).to_csc();
        assert_eq!(m.rows(), 64);
        // Interior column has 5 entries.
        let interior = 8 * 3 + 3;
        assert_eq!(m.col_nnz(interior), 5);
        assert_eq!(m.get(interior, interior), 4.0);
        // Symmetric structure.
        assert!(m.transpose().approx_eq(&m, 1e-12));
    }

    #[test]
    fn banded_width() {
        let m = MatrixGen::banded(64, 2, 5).to_csc();
        for c in 2..62 {
            assert_eq!(m.col_nnz(c), 5);
        }
        assert_eq!(m.col_nnz(0), 3);
    }

    #[test]
    fn block_diagonal_struct() {
        let m = MatrixGen::block_diagonal(64, 16, 1.0, 2).to_csc();
        assert_eq!(m.nnz(), 4 * 16 * 16);
        // No entry crosses a block boundary.
        for c in 0..64 {
            for (r, _) in m.column(c) {
                assert_eq!(r / 16, c / 16, "entry ({r},{c}) crosses blocks");
            }
        }
    }

    #[test]
    fn hub_columns_are_wide() {
        let m = MatrixGen::hub(512, 4.0, 2, 256, 9).to_csc();
        let stats = MatrixStats::of(&m);
        assert!(stats.max_col_nnz > 150);
    }
}
