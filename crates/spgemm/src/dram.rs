//! Off-chip memory model: 3D-stacked DRAM with sub-block row mapping.
//!
//! "Sparse matrices are decomposed into sub-blocks and then mapped to
//! DRAM rows for maximizing off-chip DRAM row buffer hit. By this
//! approach, access patterns are rendered predictable, thereby maximizing
//! bandwidth of through silicon vias (TSV) for the 3D stack" (§4, after
//! Zhu et al. \[12\]). This module models the open-row DRAM behaviour and
//! the two data layouts, so the claim is measurable: the sub-block layout
//! turns the tiled accelerator's access stream into long row-buffer
//! bursts, while a naive column-major layout thrashes the row buffer.

use crate::matrix::Csc;

/// Timing/energy model of one DRAM channel with a single open row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Words per DRAM row (row-buffer size).
    pub row_words: usize,
    /// Cycles to precharge + activate a new row.
    pub t_activate: u64,
    /// Cycles per column access out of the open row.
    pub t_column: u64,
    /// Energy per activation, pJ.
    pub e_activate_pj: f64,
    /// Energy per column access, pJ.
    pub e_column_pj: f64,
}

impl DramModel {
    /// A 3D-stacked (TSV) DRAM layer: wide rows, cheap columns — the
    /// paper's target substrate.
    pub fn stacked_3d() -> Self {
        DramModel {
            row_words: 1024,
            t_activate: 14,
            t_column: 1,
            e_activate_pj: 900.0,
            e_column_pj: 4.0,
        }
    }

    /// A planar DDR-class channel for contrast: narrower rows, costlier
    /// transfers.
    pub fn planar_ddr() -> Self {
        DramModel {
            row_words: 512,
            t_activate: 24,
            t_column: 4,
            e_activate_pj: 1600.0,
            e_column_pj: 20.0,
        }
    }
}

/// Statistics of one access stream against a [`DramModel`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramStats {
    /// Row activations performed.
    pub activations: u64,
    /// Column accesses performed.
    pub accesses: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Total energy, pJ.
    pub energy_pj: f64,
}

impl DramStats {
    /// Fraction of accesses served from the open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.activations as f64 / self.accesses as f64
        }
    }
}

/// Replays a word-address stream through the model (single open row per
/// run, FCFS).
pub fn simulate(model: &DramModel, addresses: impl IntoIterator<Item = usize>) -> DramStats {
    let mut stats = DramStats::default();
    let mut open_row: Option<usize> = None;
    for addr in addresses {
        let row = addr / model.row_words;
        if open_row != Some(row) {
            stats.activations += 1;
            stats.cycles += model.t_activate;
            stats.energy_pj += model.e_activate_pj;
            open_row = Some(row);
        }
        stats.accesses += 1;
        stats.cycles += model.t_column;
        stats.energy_pj += model.e_column_pj;
    }
    stats
}

/// Word addresses of the matrix nonzeros in **sub-block layout**: the
/// elements a tile of `tile_cols` result columns consumes are stored
/// contiguously (tile-major), so the accelerator's tile-order sweep reads
/// each DRAM row once.
pub fn subblock_layout_stream(b: &Csc, tile_cols: usize) -> Vec<usize> {
    // Address assignment: walk tiles in order; within a tile, walk its
    // columns; each nonzero gets the next address. The accelerator's
    // access order is identical, so addresses come out sequential.
    let mut addrs = Vec::with_capacity(b.nnz());
    let mut next = 0usize;
    for tile_start in (0..b.cols()).step_by(tile_cols.max(1)) {
        let tile_end = (tile_start + tile_cols.max(1)).min(b.cols());
        for j in tile_start..tile_end {
            for _ in b.column(j) {
                addrs.push(next);
                next += 1;
            }
        }
    }
    addrs
}

/// Word addresses of the same sweep when the matrix sits in a **naive
/// row-major dense-offset layout**: element `(r, c)` lives at
/// `r · cols + c`, so a column walk strides by the full row length and
/// changes DRAM row on almost every access.
pub fn naive_layout_stream(b: &Csc) -> Vec<usize> {
    let mut addrs = Vec::with_capacity(b.nnz());
    for j in 0..b.cols() {
        for (r, _) in b.column(j) {
            addrs.push(r * b.cols() + j);
        }
    }
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatrixGen;

    #[test]
    fn sequential_stream_is_all_hits_after_first() {
        let model = DramModel::stacked_3d();
        let stats = simulate(&model, 0..2048usize);
        // 2048 sequential words over 1024-word rows: 2 activations.
        assert_eq!(stats.activations, 2);
        assert_eq!(stats.accesses, 2048);
        assert!(stats.row_hit_rate() > 0.99);
    }

    #[test]
    fn alternating_rows_thrash() {
        let model = DramModel::stacked_3d();
        let addrs: Vec<usize> = (0..100).map(|i| (i % 2) * model.row_words).collect();
        let stats = simulate(&model, addrs);
        assert_eq!(stats.activations, 100);
        assert_eq!(stats.row_hit_rate(), 0.0);
    }

    #[test]
    fn subblock_layout_beats_naive_for_the_accelerator_sweep() {
        let m = MatrixGen::erdos_renyi(512, 8.0, 77).to_csc();
        let model = DramModel::stacked_3d();
        let blocked = simulate(&model, subblock_layout_stream(&m, 32));
        let naive = simulate(&model, naive_layout_stream(&m));
        assert_eq!(blocked.accesses, naive.accesses);
        assert!(
            blocked.row_hit_rate() > 0.95,
            "blocked hit rate {}",
            blocked.row_hit_rate()
        );
        assert!(
            blocked.row_hit_rate() > naive.row_hit_rate() + 0.3,
            "blocked {} vs naive {}",
            blocked.row_hit_rate(),
            naive.row_hit_rate()
        );
        assert!(blocked.energy_pj < naive.energy_pj);
        assert!(blocked.cycles < naive.cycles);
    }

    #[test]
    fn stacked_dram_cheaper_than_planar() {
        let m = MatrixGen::banded(256, 4, 3).to_csc();
        let stream = subblock_layout_stream(&m, 32);
        let stacked = simulate(&DramModel::stacked_3d(), stream.clone());
        let planar = simulate(&DramModel::planar_ddr(), stream);
        assert!(stacked.energy_pj < planar.energy_pj);
        assert!(stacked.cycles < planar.cycles);
    }

    #[test]
    fn empty_stream() {
        let stats = simulate(&DramModel::stacked_3d(), std::iter::empty());
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.row_hit_rate(), 0.0);
    }
}
