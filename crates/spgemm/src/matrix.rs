//! Sparse matrix formats.
//!
//! The accelerators consume compressed sparse column ([`Csc`]) matrices —
//! column-by-column multiplication is the algorithm both chips implement.
//! [`Triplets`] (COO) is the construction format, and [`Dcsc`] is the
//! doubly compressed form of Buluç & Gilbert (paper reference \[1\]) for
//! hypersparse sub-blocks, where most columns are empty.

use crate::error::SpgemmError;

/// Coordinate-format builder for sparse matrices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// An empty `rows x cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; duplicate coordinates accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::IndexOutOfBounds`] outside the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SpgemmError> {
        if row >= self.rows || col >= self.cols {
            return Err(SpgemmError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of raw (pre-accumulation) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses into CSC, accumulating duplicates and dropping explicit
    /// zeros.
    pub fn to_csc(&self) -> Csc {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|a| (a.1, a.0));
        // Accumulate duplicates.
        let mut col_ptr = vec![0usize; self.cols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if v != 0.0 {
                col_ptr[c + 1] += 1;
                row_idx.push(r);
                values.push(v);
            }
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        Csc {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

/// Compressed sparse column matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    /// An empty `rows x cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Csc {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// `(row, value)` pairs of column `c`, sorted by row.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn column(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&r, &v)| (r, v))
    }

    /// Nonzeros in column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Value at `(row, col)`, zero when absent.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.column(col)
            .find(|&(r, _)| r == row)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Transpose (CSC of the transpose = CSR of self).
    pub fn transpose(&self) -> Csc {
        let mut t = Triplets::new(self.cols, self.rows);
        for c in 0..self.cols {
            for (r, v) in self.column(c) {
                t.push(c, r, v).expect("indices in range");
            }
        }
        t.to_csc()
    }

    /// Structural + numerical equality within `tol` (same pattern, values
    /// within absolute-or-relative tolerance).
    pub fn approx_eq(&self, other: &Csc, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols || self.nnz() != other.nnz() {
            return false;
        }
        if self.col_ptr != other.col_ptr || self.row_idx != other.row_idx {
            return false;
        }
        self.values.iter().zip(&other.values).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }

    /// Number of multiply–add operations (`flops / 2`) a column-by-column
    /// product with `rhs` performs.
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::DimensionMismatch`] when shapes disagree.
    pub fn multiply_work(&self, rhs: &Csc) -> Result<usize, SpgemmError> {
        if self.cols != rhs.rows {
            return Err(SpgemmError::DimensionMismatch {
                left_cols: self.cols,
                right_rows: rhs.rows,
            });
        }
        let mut work = 0usize;
        for j in 0..rhs.cols {
            for (k, _) in rhs.column(j) {
                work += self.col_nnz(k);
            }
        }
        Ok(work)
    }

    /// Validates internal invariants (monotone column pointers, sorted
    /// unique in-range row indices).
    ///
    /// # Errors
    ///
    /// Returns [`SpgemmError::IndexOutOfBounds`] naming the first bad
    /// entry.
    pub fn validate(&self) -> Result<(), SpgemmError> {
        for c in 0..self.cols {
            let (lo, hi) = (self.col_ptr[c], self.col_ptr[c + 1]);
            let mut prev: Option<usize> = None;
            for &r in &self.row_idx[lo..hi] {
                if r >= self.rows || prev.is_some_and(|p| p >= r) {
                    return Err(SpgemmError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        rows: self.rows,
                        cols: self.cols,
                    });
                }
                prev = Some(r);
            }
        }
        Ok(())
    }

    /// Density: nnz / (rows·cols), zero for degenerate shapes.
    pub fn density(&self) -> f64 {
        let cells = (self.rows * self.cols) as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }
}

/// Doubly compressed sparse column (Buluç & Gilbert): only non-empty
/// columns are stored, for hypersparse blocks where `nnz << cols`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dcsc {
    rows: usize,
    cols: usize,
    /// Indices of non-empty columns, ascending.
    col_ids: Vec<usize>,
    /// Per non-empty column: offset into `row_idx`.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Dcsc {
    /// Compresses a CSC matrix into DCSC form.
    pub fn from_csc(csc: &Csc) -> Self {
        let mut col_ids = Vec::new();
        let mut col_ptr = vec![0usize];
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for c in 0..csc.cols() {
            if csc.col_nnz(c) > 0 {
                col_ids.push(c);
                for (r, v) in csc.column(c) {
                    row_idx.push(r);
                    values.push(v);
                }
                col_ptr.push(row_idx.len());
            }
        }
        Dcsc {
            rows: csc.rows(),
            cols: csc.cols(),
            col_ids,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Expands back to CSC.
    pub fn to_csc(&self) -> Csc {
        let mut t = Triplets::new(self.rows, self.cols);
        for (k, &c) in self.col_ids.iter().enumerate() {
            for i in self.col_ptr[k]..self.col_ptr[k + 1] {
                t.push(self.row_idx[i], c, self.values[i])
                    .expect("indices in range");
            }
        }
        t.to_csc()
    }

    /// Non-empty columns stored.
    pub fn nonempty_cols(&self) -> usize {
        self.col_ids.len()
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc {
        let mut t = Triplets::new(4, 3);
        t.push(0, 0, 1.0).unwrap();
        t.push(2, 0, 2.0).unwrap();
        t.push(1, 1, 3.0).unwrap();
        t.push(3, 2, 4.0).unwrap();
        t.push(0, 2, 5.0).unwrap();
        t.to_csc()
    }

    #[test]
    fn triplets_to_csc_sorted_and_valid() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert!(m.validate().is_ok());
        let col2: Vec<(usize, f64)> = m.column(2).collect();
        assert_eq!(col2, vec![(0, 5.0), (3, 4.0)]);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(3, 0), 0.0);
    }

    #[test]
    fn duplicates_accumulate_and_zeros_drop() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.5).unwrap();
        t.push(0, 0, 2.5).unwrap();
        t.push(1, 1, 3.0).unwrap();
        t.push(1, 1, -3.0).unwrap();
        let m = t.to_csc();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut t = Triplets::new(2, 2);
        assert!(matches!(
            t.push(2, 0, 1.0),
            Err(SpgemmError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert!(m.approx_eq(&tt, 1e-12));
        assert_eq!(m.transpose().get(0, 2), 2.0);
    }

    #[test]
    fn multiply_work_counts_flops() {
        let m = sample(); // 4x3
        let ident3 = {
            let mut t = Triplets::new(3, 3);
            for i in 0..3 {
                t.push(i, i, 1.0).unwrap();
            }
            t.to_csc()
        };
        // Work of M·I = nnz(M).
        assert_eq!(m.multiply_work(&ident3).unwrap(), m.nnz());
        assert!(matches!(
            m.multiply_work(&m),
            Err(SpgemmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dcsc_roundtrip_and_compression() {
        // A hypersparse matrix: 1000 columns, 3 non-empty.
        let mut t = Triplets::new(100, 1000);
        t.push(5, 10, 1.0).unwrap();
        t.push(6, 10, 2.0).unwrap();
        t.push(7, 500, 3.0).unwrap();
        t.push(8, 999, 4.0).unwrap();
        let csc = t.to_csc();
        let dcsc = Dcsc::from_csc(&csc);
        assert_eq!(dcsc.nonempty_cols(), 3);
        assert_eq!(dcsc.nnz(), 4);
        assert!(dcsc.to_csc().approx_eq(&csc, 0.0));
    }

    #[test]
    fn density() {
        let m = sample();
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-12);
        assert_eq!(Csc::zero(0, 0).density(), 0.0);
    }
}
