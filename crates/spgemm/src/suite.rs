//! The Fig. 6 benchmark suite.
//!
//! The paper back-annotates its chips with "benchmark sparse matrix
//! operations (University of Florida sparse matrix collection)". Offline,
//! we substitute a named synthetic suite spanning the same regimes: very
//! regular stencils (narrow merges → modest LiM advantage), uniform
//! random graphs, power-law graphs, and hub-dominated contraction
//! patterns (very wide merges → the 250x end of Fig. 6). Every benchmark
//! squares its matrix (`C = A·A`), the graph-contraction kernel.

use crate::gen::{MatrixGen, MatrixStats};
use crate::matrix::Csc;

/// One named benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Suite-unique name.
    pub name: &'static str,
    /// What the matrix models.
    pub description: &'static str,
    /// The operand (squared by the experiment).
    pub matrix: Csc,
}

impl Benchmark {
    /// Statistics of the operand.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats::of(&self.matrix)
    }
}

/// Suite scale: `Small` keeps tests fast; `Full` is the bench-binary
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Reduced sizes for unit/integration tests.
    Small,
    /// Full sizes for the Fig. 6 regeneration binary.
    Full,
}

/// Builds the Fig. 6 suite, ordered roughly by expected LiM advantage.
///
/// Generators are seeded and independent, so they fan across the
/// `lim-par` pool; result order (and every matrix, bit for bit) is
/// identical for any worker count. The whole construction is timed
/// under a `suite_gen` span.
pub fn fig6_suite(scale: SuiteScale) -> Vec<Benchmark> {
    let _span = lim_obs::Span::enter("suite_gen");
    let f = match scale {
        SuiteScale::Small => 1usize,
        SuiteScale::Full => 4usize,
    };
    type Make = Box<dyn Fn() -> Csc + Send + Sync>;
    let jobs: Vec<(&'static str, &'static str, Make)> = vec![
        (
            "mesh2d",
            "5-point 2-D mesh Laplacian (regular stencil)",
            Box::new(move || MatrixGen::mesh_laplacian(16 * f).to_csc()),
        ),
        (
            "banded",
            "banded operator, 9 diagonals",
            Box::new(move || MatrixGen::banded(256 * f, 4, 101).to_csc()),
        ),
        (
            "er_d8",
            "uniform random digraph, avg degree 8",
            Box::new(move || MatrixGen::erdos_renyi(256 * f, 8.0, 102).to_csc()),
        ),
        (
            "er_d16",
            "uniform random digraph, avg degree 16",
            Box::new(move || MatrixGen::erdos_renyi(256 * f, 16.0, 103).to_csc()),
        ),
        (
            "rmat",
            "R-MAT power-law graph (a=0.57)",
            Box::new(move || MatrixGen::rmat(256 * f, 16 * 256 * f, 0.57, 0.19, 0.19, 104).to_csc()),
        ),
        (
            "blocks",
            "block-diagonal contraction tiles (64x64, 60% fill)",
            Box::new(move || MatrixGen::block_diagonal(256 * f, 64, 0.6, 105).to_csc()),
        ),
        (
            "hubs",
            "sparse graph with dense hub columns",
            Box::new(move || MatrixGen::hub(256 * f, 6.0, 4, 192 * f, 106).to_csc()),
        ),
    ];
    lim_par::par_map(jobs, |(name, description, make)| Benchmark {
        name,
        description,
        matrix: make(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_distinct_names_and_valid_matrices() {
        let suite = fig6_suite(SuiteScale::Small);
        assert!(suite.len() >= 6);
        let mut names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
        for b in &suite {
            assert!(b.matrix.validate().is_ok(), "{}", b.name);
            assert!(b.matrix.nnz() > 0, "{}", b.name);
        }
    }

    #[test]
    fn suite_spans_merge_width_regimes() {
        let suite = fig6_suite(SuiteScale::Small);
        let widths: Vec<usize> = suite.iter().map(|b| b.stats().max_col_nnz).collect();
        let min = *widths.iter().min().unwrap();
        let max = *widths.iter().max().unwrap();
        // At least an order of magnitude of spread drives the Fig. 6 range.
        assert!(max >= 20 * min, "widths {widths:?}");
    }

    #[test]
    fn full_scale_is_bigger() {
        let small = fig6_suite(SuiteScale::Small);
        let full = fig6_suite(SuiteScale::Full);
        for (s, f) in small.iter().zip(&full) {
            assert!(f.matrix.nnz() > s.matrix.nnz(), "{}", s.name);
        }
    }
}
