//! Semirings for generalized SpGEMM.
//!
//! The paper's title operation is **Generalized** sparse matrix–sparse
//! matrix multiplication: graph algorithms in the language of linear
//! algebra (Kepner & Gilbert) swap the `(+, ×)` of arithmetic for other
//! semirings — shortest paths use `(min, +)`, reachability uses
//! `(∨, ∧)`. The accelerator hardware is indifferent: the CAM matches
//! indices either way, and the "multiply-and-add" block computes the
//! semiring's two operations. This module defines the algebra and the
//! standard instances.

/// A semiring over `f64`: the `⊕`/`⊗` pair with their identities.
///
/// Implementations must satisfy the semiring laws (associativity of both
/// operations, commutativity of `⊕`, distributivity, and the identities
/// behaving as such); the provided instances do.
pub trait Semiring: Copy + std::fmt::Debug {
    /// The additive identity (also the implicit value of absent entries).
    fn zero(&self) -> f64;
    /// The combining operation `⊕` (accumulation).
    fn plus(&self, a: f64, b: f64) -> f64;
    /// The coupling operation `⊗` (per product term).
    fn times(&self, a: f64, b: f64) -> f64;
    /// True when a value equals the additive identity (used to drop
    /// entries from sparse results).
    fn is_zero(&self, a: f64) -> bool {
        a == self.zero()
    }
}

/// Ordinary arithmetic `(+, ×)` — numerical SpGEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Arithmetic;

impl Semiring for Arithmetic {
    fn zero(&self) -> f64 {
        0.0
    }
    fn plus(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn times(&self, a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The tropical `(min, +)` semiring — shortest paths: `C[i][j]` of
/// `A ⊗ B` is the cheapest two-leg route `i → k → j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    fn zero(&self) -> f64 {
        f64::INFINITY
    }
    fn plus(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn times(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// The boolean `(∨, ∧)` semiring over {0, 1} — reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    fn zero(&self) -> f64 {
        0.0
    }
    fn plus(&self, a: f64, b: f64) -> f64 {
        if a != 0.0 || b != 0.0 {
            1.0
        } else {
            0.0
        }
    }
    fn times(&self, a: f64, b: f64) -> f64 {
        if a != 0.0 && b != 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<S: Semiring>(s: S, samples: &[f64]) {
        for &a in samples {
            // Identities.
            assert_eq!(s.plus(a, s.zero()), a);
            assert!(s.is_zero(s.times(a, s.zero())) || s.times(a, s.zero()) == s.zero());
            for &b in samples {
                // Commutativity of ⊕.
                assert_eq!(s.plus(a, b), s.plus(b, a));
                for &c in samples {
                    // Associativity.
                    assert_eq!(s.plus(s.plus(a, b), c), s.plus(a, s.plus(b, c)));
                    assert_eq!(s.times(s.times(a, b), c), s.times(a, s.times(b, c)));
                    // Distributivity.
                    assert_eq!(
                        s.times(a, s.plus(b, c)),
                        s.plus(s.times(a, b), s.times(a, c))
                    );
                }
            }
        }
    }

    #[test]
    fn arithmetic_laws() {
        laws(Arithmetic, &[0.0, 1.0, 2.5, -3.0]);
    }

    #[test]
    fn min_plus_laws() {
        laws(MinPlus, &[f64::INFINITY, 0.0, 1.0, 4.5]);
    }

    #[test]
    fn bool_laws() {
        laws(BoolOrAnd, &[0.0, 1.0]);
    }
}
