//! Property tests for the SpGEMM infrastructure, on the hermetic
//! `lim-testkit` harness.

use lim_spgemm::accel::heap::HeapAccelerator;
use lim_spgemm::accel::lim_cam::LimCamAccelerator;
use lim_spgemm::dram::{naive_layout_stream, simulate, subblock_layout_stream, DramModel};
use lim_spgemm::io::{read_mtx, write_mtx};
use lim_spgemm::matrix::Triplets;
use lim_spgemm::Csc;
use lim_testkit::prop::check;
use lim_testkit::TestRng;

/// Random square matrix with up to `max_entries` draws (duplicates
/// collapse in CSC, as with the former proptest strategy).
fn any_matrix(rng: &mut TestRng, n: usize, max_entries: usize) -> Csc {
    let entries = rng.gen_range(0usize..max_entries);
    let mut t = Triplets::new(n, n);
    for _ in 0..entries {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        let v = rng.gen_range(0.1f64..2.0);
        t.push(r, c, v).expect("in range");
    }
    t.to_csc()
}

#[test]
fn mtx_roundtrip() {
    check("mtx_roundtrip", |rng| {
        let m = any_matrix(rng, 32, 200);
        let back = read_mtx(&write_mtx(&m)).unwrap();
        assert!(back.approx_eq(&m, 1e-12));
    });
}

#[test]
fn dram_hit_rate_is_a_probability() {
    check("dram_hit_rate_is_a_probability", |rng| {
        let m = any_matrix(rng, 64, 400);
        let model = DramModel::stacked_3d();
        for stream in [subblock_layout_stream(&m, 8), naive_layout_stream(&m)] {
            let stats = simulate(&model, stream);
            let hr = stats.row_hit_rate();
            assert!((0.0..=1.0).contains(&hr));
            assert!(stats.cycles >= stats.accesses * model.t_column);
            assert_eq!(stats.accesses as usize, m.nnz());
        }
    });
}

#[test]
fn blocked_layout_never_loses_to_naive() {
    check("blocked_layout_never_loses_to_naive", |rng| {
        let m = any_matrix(rng, 96, 600);
        let model = DramModel::stacked_3d();
        let blocked = simulate(&model, subblock_layout_stream(&m, 16));
        let naive = simulate(&model, naive_layout_stream(&m));
        assert!(blocked.activations <= naive.activations + 1);
        assert!(blocked.energy_pj <= naive.energy_pj + 1e-9);
    });
}

#[test]
fn accelerator_stats_are_internally_consistent() {
    check("accelerator_stats_are_internally_consistent", |rng| {
        let m = any_matrix(rng, 48, 300);
        let work = m.multiply_work(&m).unwrap() as u64;
        let lim = LimCamAccelerator::paper_chip().multiply(&m, &m).unwrap();
        assert_eq!(lim.stats.multiplies, work);
        assert_eq!(lim.stats.cam_matches, work);
        assert!(lim.stats.new_entries <= work);
        assert!(lim.stats.mem_writes as usize >= lim.product.nnz());

        let heap = HeapAccelerator::paper_chip().multiply(&m, &m).unwrap();
        assert_eq!(heap.stats.multiplies, work);
        assert!(heap.stats.cycles >= heap.stats.multiplies);
        // Every product term was popped from the FIFO, so insertions
        // match pops.
        assert_eq!(heap.stats.new_entries, work);
    });
}

#[test]
fn transpose_preserves_multiply_work_symmetrically() {
    check("transpose_preserves_multiply_work_symmetrically", |rng| {
        let m = any_matrix(rng, 24, 150);
        // work(A·A) computed on the transpose pair relates by symmetry:
        // work(Aᵀ·Aᵀ) = work over rows = finite and non-negative; both
        // products are transposes of each other.
        let t = m.transpose();
        let c1 = lim_spgemm::reference::spgemm(&m, &m).unwrap();
        let c2 = lim_spgemm::reference::spgemm(&t, &t).unwrap();
        assert!(c1.transpose().approx_eq(&c2, 1e-9));
    });
}
