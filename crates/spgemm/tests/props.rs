//! Property tests for the SpGEMM infrastructure.

use lim_spgemm::accel::heap::HeapAccelerator;
use lim_spgemm::accel::lim_cam::LimCamAccelerator;
use lim_spgemm::dram::{naive_layout_stream, simulate, subblock_layout_stream, DramModel};
use lim_spgemm::io::{read_mtx, write_mtx};
use lim_spgemm::matrix::Triplets;
use lim_spgemm::Csc;
use proptest::prelude::*;

fn arb_matrix(n: usize, max_entries: usize) -> impl Strategy<Value = Csc> {
    prop::collection::vec((0..n, 0..n, 0.1f64..2.0), 0..max_entries).prop_map(move |entries| {
        let mut t = Triplets::new(n, n);
        for (r, c, v) in entries {
            t.push(r, c, v).expect("in range");
        }
        t.to_csc()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mtx_roundtrip(m in arb_matrix(32, 200)) {
        let back = read_mtx(&write_mtx(&m)).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-12));
    }

    #[test]
    fn dram_hit_rate_is_a_probability(m in arb_matrix(64, 400)) {
        let model = DramModel::stacked_3d();
        for stream in [subblock_layout_stream(&m, 8), naive_layout_stream(&m)] {
            let stats = simulate(&model, stream);
            let hr = stats.row_hit_rate();
            prop_assert!((0.0..=1.0).contains(&hr));
            prop_assert!(stats.cycles >= stats.accesses * model.t_column);
            prop_assert_eq!(stats.accesses as usize, m.nnz());
        }
    }

    #[test]
    fn blocked_layout_never_loses_to_naive(m in arb_matrix(96, 600)) {
        let model = DramModel::stacked_3d();
        let blocked = simulate(&model, subblock_layout_stream(&m, 16));
        let naive = simulate(&model, naive_layout_stream(&m));
        prop_assert!(blocked.activations <= naive.activations + 1);
        prop_assert!(blocked.energy_pj <= naive.energy_pj + 1e-9);
    }

    #[test]
    fn accelerator_stats_are_internally_consistent(m in arb_matrix(48, 300)) {
        let work = m.multiply_work(&m).unwrap() as u64;
        let lim = LimCamAccelerator::paper_chip().multiply(&m, &m).unwrap();
        prop_assert_eq!(lim.stats.multiplies, work);
        prop_assert_eq!(lim.stats.cam_matches, work);
        prop_assert!(lim.stats.new_entries <= work);
        prop_assert!(lim.stats.mem_writes as usize >= lim.product.nnz());

        let heap = HeapAccelerator::paper_chip().multiply(&m, &m).unwrap();
        prop_assert_eq!(heap.stats.multiplies, work);
        prop_assert!(heap.stats.cycles >= heap.stats.multiplies);
        // Every product term was popped from the FIFO, so insertions
        // match pops.
        prop_assert_eq!(heap.stats.new_entries, work);
    }

    #[test]
    fn transpose_preserves_multiply_work_symmetrically(m in arb_matrix(24, 150)) {
        // work(A·A) computed on the transpose pair relates by symmetry:
        // work(Aᵀ·Aᵀ) = work over rows = finite and non-negative; both
        // products are transposes of each other.
        let t = m.transpose();
        let c1 = lim_spgemm::reference::spgemm(&m, &m).unwrap();
        let c2 = lim_spgemm::reference::spgemm(&t, &t).unwrap();
        prop_assert!(c1.transpose().approx_eq(&c2, 1e-9));
    }
}
