//! Activity-based power analysis.
//!
//! Dynamic power combines net switching (wire + pin capacitance at the
//! per-net toggle rate), cell-internal switching, an idealized clock tree,
//! and brick-macro access energy from the generated library. Leakage sums
//! standard cells and macros. The switching activity comes from a
//! `lim-rtl` simulation (the flow's Modelsim + `.saif` step) or a uniform
//! default.

use crate::error::PhysicalError;
use crate::route::NetRoute;
use lim_brick::BrickLibrary;
use lim_rtl::{CellKind, NetId, Netlist, SwitchingActivity};
use lim_tech::units::{Femtojoules, Megahertz, Milliwatts};
use lim_tech::Technology;

/// Power broken down by contributor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Clock frequency the report was computed at.
    pub frequency: Megahertz,
    /// Net + cell-internal switching power.
    pub logic_dynamic: Milliwatts,
    /// Clock-distribution power.
    pub clock: Milliwatts,
    /// Brick macro access power.
    pub macros: Milliwatts,
    /// Static leakage.
    pub leakage: Milliwatts,
    /// Energy of one clock cycle (dynamic only).
    pub energy_per_cycle: Femtojoules,
}

impl PowerReport {
    /// Total power.
    pub fn total(&self) -> Milliwatts {
        self.logic_dynamic + self.clock + self.macros + self.leakage
    }
}

/// Fraction of cycles a macro performs an access (reads dominate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroActivity {
    /// Read accesses per cycle (0..=1).
    pub read_rate: f64,
    /// Write accesses per cycle (0..=1).
    pub write_rate: f64,
    /// CAM match operations per cycle (0..=1, CAM entries only).
    pub match_rate: f64,
}

impl Default for MacroActivity {
    fn default() -> Self {
        MacroActivity {
            read_rate: 0.5,
            write_rate: 0.25,
            match_rate: 0.0,
        }
    }
}

/// Computes the power report.
///
/// # Errors
///
/// Propagates missing brick-library entries.
#[allow(clippy::too_many_arguments)] // the flow passes every report input explicitly
pub fn analyze(
    tech: &Technology,
    netlist: &Netlist,
    routes: &[NetRoute],
    activity: &SwitchingActivity,
    library: &BrickLibrary,
    frequency: Megahertz,
    macro_activity: &MacroActivity,
    clock_cap_override: Option<lim_tech::units::Femtofarads>,
) -> Result<PowerReport, PhysicalError> {
    let vdd = tech.vdd;
    let sc = 1.0 + tech.short_circuit_fraction;

    // Net switching: each toggle charges or discharges the net, costing
    // C·Vdd²/2 from the supply on average.
    let mut e_logic = 0.0f64; // fJ per cycle
    for (i, route) in routes.iter().enumerate() {
        let net = NetId::from_index(i);
        if Some(net) == netlist.clock() {
            continue; // counted in the clock term
        }
        let rate = activity.toggle_rate(net);
        let c = route.total_cap().value();
        e_logic += rate * 0.5 * c * vdd.value() * vdd.value();
    }

    // Cell internal power and leakage.
    let mut leak_nw = 0.0f64;
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Gate { kind, drive } => {
                let out_rate = cell
                    .outputs
                    .first()
                    .map(|&o| activity.toggle_rate(o))
                    .unwrap_or(0.0);
                e_logic += out_rate
                    * kind.internal_cap(tech, *drive).value()
                    * vdd.value()
                    * vdd.value();
                leak_nw += kind.leakage_nw(tech, *drive);
            }
            CellKind::Macro { lib_name } => {
                leak_nw += library.get(lib_name)?.estimate.leakage.value() * 1e6;
            }
            CellKind::Tie { .. } => {}
        }
    }

    // Clock: full swing twice per cycle over the clock network's load
    // (the synthesized tree when available, else the bare clock net).
    let clock_cap = clock_cap_override
        .map(|c| c.value())
        .or_else(|| netlist.clock().map(|clk| routes[clk.index()].total_cap().value()))
        .unwrap_or(0.0);
    let e_clock = clock_cap * vdd.value() * vdd.value();

    // Macro access energy.
    let mut e_macro = 0.0f64;
    for cell in netlist.cells() {
        if let CellKind::Macro { lib_name } = &cell.kind {
            let est = &library.get(lib_name)?.estimate;
            e_macro += macro_activity.read_rate * est.read_energy.value()
                + macro_activity.write_rate * est.write_energy.value();
            if let Some(me) = est.match_energy {
                e_macro += macro_activity.match_rate * me.value();
            }
        }
    }

    let e_logic = e_logic * sc;
    let e_clock = e_clock * sc;
    let energy_per_cycle = Femtojoules::new(e_logic + e_clock + e_macro);
    Ok(PowerReport {
        frequency,
        logic_dynamic: Femtojoules::new(e_logic).average_power(frequency),
        clock: Femtojoules::new(e_clock).average_power(frequency),
        macros: Femtojoules::new(e_macro).average_power(frequency),
        leakage: Milliwatts::new(leak_nw * 1e-6),
        energy_per_cycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Floorplan, FloorplanOptions};
    use crate::place::{place, PlaceEffort};
    use crate::route::estimate;
    use lim_brick::{BitcellKind, BrickSpec};
    use lim_rtl::generators::decoder;
    use lim_rtl::Simulator;

    #[test]
    fn decoder_power_positive_and_scales_with_frequency() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 4, 16, true).unwrap();
        let lib = BrickLibrary::new();
        let fp = Floorplan::build(&tech, &dec, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &dec, &fp, 5, PlaceEffort::default()).unwrap();
        let routes = estimate(&tech, &dec, &pl, &fp, &lib).unwrap();
        let act = SwitchingActivity::uniform(dec.net_count(), 0.2, 100);
        let p500 = analyze(
            &tech,
            &dec,
            &routes,
            &act,
            &lib,
            Megahertz::new(500.0),
            &MacroActivity::default(),
            None,
        )
        .unwrap();
        let p1000 = analyze(
            &tech,
            &dec,
            &routes,
            &act,
            &lib,
            Megahertz::new(1000.0),
            &MacroActivity::default(),
            None,
        )
        .unwrap();
        assert!(p500.total().value() > 0.0);
        assert!(p1000.logic_dynamic.value() > 1.9 * p500.logic_dynamic.value());
        // Leakage is frequency independent.
        assert!((p1000.leakage.value() - p500.leakage.value()).abs() < 1e-12);
    }

    #[test]
    fn simulated_activity_beats_uniform_guess_for_idle_input() {
        // A decoder whose address never changes toggles almost nothing.
        let tech = Technology::cmos65();
        let dec = decoder("dec", 4, 16, true).unwrap();
        let lib = BrickLibrary::new();
        let fp = Floorplan::build(&tech, &dec, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &dec, &fp, 5, PlaceEffort::default()).unwrap();
        let routes = estimate(&tech, &dec, &pl, &fp, &lib).unwrap();

        let mut sim = Simulator::new(&dec).unwrap();
        for _ in 0..50 {
            sim.eval(&[true, false, false, true, true]).unwrap();
        }
        // eval() doesn't advance cycles; use step-free uniform instead:
        let idle = sim.activity();
        let busy = SwitchingActivity::uniform(dec.net_count(), 0.3, 100);
        let f = Megahertz::new(500.0);
        let p_idle = analyze(&tech, &dec, &routes, &idle, &lib, f, &MacroActivity::default(), None)
            .unwrap();
        let p_busy = analyze(&tech, &dec, &routes, &busy, &lib, f, &MacroActivity::default(), None)
            .unwrap();
        assert!(p_idle.logic_dynamic.value() < p_busy.logic_dynamic.value());
    }

    #[test]
    fn macro_access_energy_counted() {
        let tech = Technology::cmos65();
        let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap();
        let lib = BrickLibrary::generate(&tech, &[spec], &[2]).unwrap();
        let mut n = Netlist::new("mem");
        let clk = n.add_clock("clk");
        let outs = n.add_macro("u_b", "brick_8t_16_10_x2", &[clk], 10, "arbl");
        for o in outs {
            n.mark_output(o);
        }
        let fp = Floorplan::build(&tech, &n, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &n, &fp, 5, PlaceEffort::default()).unwrap();
        let routes = estimate(&tech, &n, &pl, &fp, &lib).unwrap();
        let act = SwitchingActivity::uniform(n.net_count(), 0.2, 100);
        let f = Megahertz::new(500.0);
        let idle = analyze(
            &tech,
            &n,
            &routes,
            &act,
            &lib,
            f,
            &MacroActivity {
                read_rate: 0.0,
                write_rate: 0.0,
                match_rate: 0.0,
            },
            None,
        )
        .unwrap();
        let busy = analyze(&tech, &n, &routes, &act, &lib, f, &MacroActivity::default(), None).unwrap();
        assert_eq!(idle.macros.value(), 0.0);
        assert!(busy.macros.value() > 0.0);
        assert!(busy.leakage.value() > 0.0);
    }
}
