//! Physical synthesis for LiM designs: the ICC/Encounter + PrimeTime
//! stand-in.
//!
//! "Memory bricks are used as macro cells in the conventional physical
//! synthesis flow, with synthesis files supplied by the dynamically
//! generated brick library" (§3). This crate takes a mapped gate-level
//! netlist (from `lim-rtl`), a brick library (from `lim-brick`) and a
//! switching-activity profile, and produces placement, wire estimates,
//! timing and power:
//!
//! * [`floorplan`] — die sizing, macro (brick bank) legalization, standard
//!   cell rows, restrictive-patterning guard-space accounting.
//! * [`analytic`] — deterministic B2B quadratic global placement
//!   (Jacobi-preconditioned CG, Tetris legalization) seeding the
//!   annealer.
//! * [`place`] — analytic-seeded, seeded simulated-annealing placement
//!   minimizing half-perimeter wirelength.
//! * [`route`] — per-net Steiner-factor wire estimates with RC
//!   parasitics (the `.spef` of the flow).
//! * [`sta`] — NLDM-style static timing analysis: slew-aware arrival
//!   propagation through gates and brick macros, setup checks, critical
//!   path and fmax.
//! * [`power`] — activity-based dynamic power plus leakage, per block.
//! * [`flow`] — the one-call pipeline producing a [`BlockReport`].
//!
//! # Examples
//!
//! ```
//! use lim_physical::flow::{PhysicalSynthesis, FlowOptions};
//! use lim_rtl::generators::decoder;
//! use lim_brick::BrickLibrary;
//! use lim_tech::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::cmos65();
//! let lib = BrickLibrary::new(); // no macros in this design
//! let dec = decoder("dec5to32", 5, 32, true)?;
//! let report = PhysicalSynthesis::new(&tech, &lib)
//!     .run(&dec, &FlowOptions::default())?;
//! assert!(report.fmax.value() > 0.0);
//! assert!(report.die_area.value() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod analytic;
pub mod clock;
pub mod error;
pub mod floorplan;
pub mod flow;
pub mod place;
pub mod power;
pub mod report;
pub mod route;
pub mod sta;
pub mod svg;

pub use clock::ClockTreeReport;
pub use error::PhysicalError;
pub use flow::{BlockReport, FlowOptions, FlowStats, PhysicalSynthesis};
pub use sta::TimingReport;
