//! Standard-cell placement: analytic global placement seeding a short
//! refinement anneal.
//!
//! Cells occupy uniform slots on the floorplan's rows. By default
//! ([`SeedMode::Analytic`]) a deterministic analytic global placer
//! (`crate::analytic`: bound-to-bound quadratic net model solved per
//! axis with Jacobi-preconditioned conjugate gradient, legalized
//! Tetris-style onto the slot grid) produces the initial assignment,
//! and the annealer runs as a short low-temperature refinement on top
//! of it. [`SeedMode::Cold`] keeps the pre-analytic behavior: every
//! start anneals from the ordered assignment with the full schedule.
//!
//! # Incremental cost
//!
//! The annealer precomputes every net's bounding-box perimeter once and
//! keeps two flat arrays hot: the position of every pin occurrence
//! (net-major, so a net's pins are contiguous) and the cached
//! half-perimeter of every net. A move overwrites the displaced cells'
//! pin positions in place and re-derives the bounds of only the touched
//! nets — a branchless min/max fold over a contiguous f64 slice — so a
//! move costs O(pins on touched nets) with **zero per-move heap
//! allocation** (all scratch buffers are reused). Rejected moves undo by
//! rewriting the same few positions; accepted moves commit the touched
//! nets' new perimeters into the cache. Touched nets are visited in
//! ascending net order and min/max folds are order-independent, so every
//! delta is bit-identical to a from-scratch recompute of the touched
//! nets. Under `debug_assertions` the running cost is additionally
//! checked against a full recompute every [`DRIFT_CHECK_INTERVAL`]
//! accepted moves.
//!
//! # Multi-start
//!
//! [`PlaceEffort::starts`] runs several independently seeded anneals
//! (through `lim-par::par_map` unless
//! [`PlaceEffort::parallel_starts`] is cleared) and keeps the
//! lowest-HPWL result. Under [`SeedMode::Analytic`] the analytic solve
//! and legalization run **once** and every start refines the same
//! legalized assignment with its own move stream — K jittered
//! refinements instead of K cold anneals. Per-start seeds derive from
//! the caller's seed by a SplitMix64 walk and the winner is chosen by
//! strictly-lower final HPWL in seed order, so the output is
//! byte-identical for any `LIM_PAR_THREADS` value and independent of
//! start completion order.

use crate::error::PhysicalError;
use crate::floorplan::Floorplan;
use lim_rtl::{CellKind, NetId, Netlist};
use lim_tech::units::Microns;
use lim_tech::Technology;
use lim_testkit::rng::splitmix64;
use lim_testkit::TestRng;

/// Accepted moves between from-scratch cost cross-checks in debug
/// builds.
pub const DRIFT_CHECK_INTERVAL: usize = 1024;

/// Fraction of the cold move budget a seeded refinement start spends.
pub(crate) const REFINE_BUDGET: f64 = 0.15;

/// Initial-temperature multiplier of a seeded refinement relative to a
/// cold start: low enough that the analytic placement is polished, not
/// scrambled.
pub(crate) const REFINE_T0: f64 = 0.06;

/// Move-window multiplier of a seeded refinement: targets stay local to
/// the analytic placement from the first move.
pub(crate) const REFINE_WINDOW: f64 = 0.35;

/// Where every pin of the design sits.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-cell position (cell index → center), `None` for macros (their
    /// position lives in the floorplan).
    pub cell_pos: Vec<Option<(f64, f64)>>,
    /// Per-macro-instance position, parallel to the floorplan macro list.
    pub macro_centers: Vec<(String, (f64, f64))>,
    /// Positions of primary-input pins (net index → position).
    pub input_pins: Vec<(NetId, (f64, f64))>,
    /// Positions of primary-output pins.
    pub output_pins: Vec<(NetId, (f64, f64))>,
    /// Final total HPWL in µm.
    pub hpwl: f64,
    /// Annealer moves actually evaluated (no-op draws excluded), summed
    /// over every start. Zero when the design had nothing to anneal.
    pub moves: usize,
    /// Moves accepted (their incremental cost updates were kept), summed
    /// over every start.
    pub accepted: usize,
    /// Annealing starts actually run (0 when annealing was skipped).
    pub starts: usize,
    /// Conjugate-gradient iterations the analytic seed solve spent
    /// (both axes, all reweight rounds); 0 when no analytic solve ran.
    pub analytic_iters: usize,
    /// Total µm of displacement the Tetris legalizer applied to the
    /// analytic solution; 0.0 when no analytic solve ran.
    pub legalize_displacement: f64,
    /// Whether the annealing starts refined an analytic seed (`false`
    /// for cold anneals and designs with nothing to place).
    pub seeded: bool,
}

impl Placement {
    /// Position of the pin that `net` presents at cell `cell_idx`; the
    /// cell center for std cells, the macro center for macros.
    pub fn position_of_cell(&self, cell_idx: usize, floorplan: &Floorplan) -> (f64, f64) {
        if let Some(p) = self.cell_pos[cell_idx] {
            p
        } else {
            // Macro: find by order.
            let m = &floorplan.macros;
            let idx = self
                .macro_centers
                .iter()
                .position(|(name, _)| m.iter().any(|pm| &pm.instance == name))
                .unwrap_or(0);
            self.macro_centers
                .get(idx)
                .map(|(_, p)| *p)
                .unwrap_or((0.0, 0.0))
        }
    }
}

/// How each annealing start gets its initial assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// One shared analytic global placement (B2B quadratic model,
    /// Tetris legalization) seeds every start; the anneal is a short
    /// low-temperature refinement. The default.
    #[default]
    Analytic,
    /// Every start anneals cold from the ordered assignment with the
    /// full move budget and schedule.
    Cold,
}

/// Placement effort: the annealing move budget, the number of
/// independent starts, and how starts are seeded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceEffort {
    /// Multiplier on the per-start annealing move budget.
    pub moves: f64,
    /// Independent annealing starts; the lowest-HPWL result wins with a
    /// fixed seed-order tie-break (byte-identical for any worker count).
    pub starts: usize,
    /// Fan starts across `lim-par::par_map` (`true`) or run them
    /// serially on the calling thread (`false`) — for callers already
    /// inside an outer parallel sweep (see `lim::dse::nesting_plan`).
    /// Never affects the result, only where the work runs.
    pub parallel_starts: bool,
    /// How starts get their initial assignment (analytic seed by
    /// default).
    pub seed_mode: SeedMode,
}

impl PlaceEffort {
    /// Effort with a custom move-budget multiplier and a single start.
    pub fn new(moves: f64) -> Self {
        PlaceEffort {
            moves,
            starts: 1,
            parallel_starts: true,
            seed_mode: SeedMode::default(),
        }
    }

    /// Default move budget, `n` independent starts (floored at 1).
    pub fn starts(n: usize) -> Self {
        PlaceEffort::default().with_starts(n)
    }

    /// Returns `self` with `n` starts (floored at 1).
    pub fn with_starts(mut self, n: usize) -> Self {
        self.starts = n.max(1);
        self
    }

    /// Returns `self` with starts forced onto the calling thread.
    pub fn serial(mut self) -> Self {
        self.parallel_starts = false;
        self
    }

    /// Returns `self` annealing cold (no analytic seed), the
    /// pre-analytic behavior.
    pub fn cold(mut self) -> Self {
        self.seed_mode = SeedMode::Cold;
        self
    }
}

impl Default for PlaceEffort {
    fn default() -> Self {
        PlaceEffort::new(1.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PinRef {
    Cell(usize),
    Macro(usize),
    Input(usize),
    Output(usize),
}

/// Static per-design placement context shared (read-only) by every
/// start: the slot grid, fixed pin positions, and CSR net membership.
pub(crate) struct Ctx<'a> {
    pub(crate) slots: &'a [(f64, f64)],
    pub(crate) macro_centers: &'a [(String, (f64, f64))],
    pub(crate) input_pins: &'a [(NetId, (f64, f64))],
    pub(crate) output_pins: &'a [(NetId, (f64, f64))],
    /// CSR: pins of each net, one entry per pin occurrence (net-major,
    /// the same layout as every `CostModel`'s position array).
    pub(crate) net_off: &'a [u32],
    pub(crate) net_pins: &'a [PinRef],
    /// CSR offsets of each placeable cell's pin occurrences.
    pub(crate) cell_off: &'a [u32],
    /// Flat position-array index of each cell pin occurrence.
    pub(crate) cell_pin_idx: &'a [u32],
    /// CSR: deduplicated ascending net list of each placeable cell,
    /// each run terminated by a `u32::MAX` sentinel so the move
    /// evaluator's two-list merge needs no exhaustion branches.
    pub(crate) merge_off: &'a [u32],
    pub(crate) merge_nets: &'a [u32],
    /// Row index of each slot (empty rows compacted away).
    pub(crate) slot_row: &'a [u32],
    /// CSR offsets of each row's contiguous slot range.
    pub(crate) row_off: &'a [u32],
    pub(crate) n_placeable: usize,
    /// Per-start annealing move budget (cold schedule).
    pub(crate) n_moves: usize,
    /// Die dimensions, for the analytic solver's weak center anchor.
    pub(crate) die: (f64, f64),
}

impl Ctx<'_> {
    pub(crate) fn pin_idx_of(&self, ord: usize) -> &[u32] {
        &self.cell_pin_idx[self.cell_off[ord] as usize..self.cell_off[ord + 1] as usize]
    }

    fn merge_nets_of(&self, ord: usize) -> &[u32] {
        &self.merge_nets[self.merge_off[ord] as usize..self.merge_off[ord + 1] as usize]
    }

    pub(crate) fn net_count(&self) -> usize {
        self.net_off.len() - 1
    }

    /// Position of one pin occurrence under an assignment mapping cell
    /// ordinals to slots (fixed pins ignore the assignment).
    pub(crate) fn pin_position(&self, pin: PinRef, slot_of: &[usize]) -> (f64, f64) {
        match pin {
            PinRef::Cell(ord) => self.slots[slot_of[ord]],
            PinRef::Macro(i) => self.macro_centers[i].1,
            PinRef::Input(i) => self.input_pins[i].1,
            PinRef::Output(i) => self.output_pins[i].1,
        }
    }
}

/// The owned placement problem: everything `Ctx` borrows, built once
/// per design and shared by the analytic seeder and every annealing
/// start.
pub(crate) struct Problem {
    slots: Vec<(f64, f64)>,
    macro_centers: Vec<(String, (f64, f64))>,
    input_pins: Vec<(NetId, (f64, f64))>,
    output_pins: Vec<(NetId, (f64, f64))>,
    net_off: Vec<u32>,
    net_pins: Vec<PinRef>,
    cell_off: Vec<u32>,
    cell_pin_idx: Vec<u32>,
    merge_off: Vec<u32>,
    merge_nets: Vec<u32>,
    slot_row: Vec<u32>,
    row_off: Vec<u32>,
    /// Netlist cell index of each placeable ordinal.
    pub(crate) placeable: Vec<usize>,
    n_moves: usize,
    die: (f64, f64),
}

impl Problem {
    /// Builds the slot grid, fixed pin positions, and CSR net
    /// membership for `netlist` on `floorplan`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicalError::DoesNotFit`] when the rows offer fewer
    /// slots than there are placeable cells.
    pub(crate) fn build(
        tech: &Technology,
        netlist: &Netlist,
        floorplan: &Floorplan,
        effort_moves: f64,
    ) -> Result<Self, PhysicalError> {
        let cells = netlist.cells();
        let placeable: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.kind, CellKind::Macro { .. }))
            .map(|(i, _)| i)
            .collect();

        // Uniform slot grid across the rows, sized from the average cell
        // footprint; shrink if rounding leaves too few slots.
        let total_area = netlist.stdcell_area(tech).value();
        let avg_width = if placeable.is_empty() {
            1.0
        } else {
            (total_area / placeable.len() as f64 / tech.row_height.value()).max(0.2)
        };
        let mut slot_w = avg_width;
        let build_slots = |slot_w: f64| -> Vec<(f64, f64)> {
            let mut slots = Vec::new();
            for row in &floorplan.rows {
                let usable = row.width().value();
                let n = (usable / slot_w).floor() as usize;
                for k in 0..n {
                    slots.push((
                        row.x_start.value() + (k as f64 + 0.5) * slot_w,
                        row.y.value() + tech.row_height.value() / 2.0,
                    ));
                }
            }
            slots
        };
        let mut slots = build_slots(slot_w);
        while slots.len() < placeable.len() && slot_w > 0.05 {
            slot_w *= 0.8;
            slots = build_slots(slot_w);
        }
        if slots.len() < placeable.len() {
            return Err(PhysicalError::DoesNotFit {
                demand: placeable.len() as f64,
                capacity: slots.len() as f64,
            });
        }

        // Row structure of the slot grid for the annealer's 2-D move
        // windows: rows that round down to zero slots are compacted away
        // so every row in `row_off` is non-empty.
        let mut row_off: Vec<u32> = Vec::with_capacity(floorplan.rows.len() + 1);
        let mut slot_row: Vec<u32> = Vec::with_capacity(slots.len());
        row_off.push(0);
        for row in &floorplan.rows {
            let n = (row.width().value() / slot_w).floor() as usize;
            if n == 0 {
                continue;
            }
            let r = (row_off.len() - 1) as u32;
            slot_row.extend(std::iter::repeat_n(r, n));
            row_off.push(row_off[row_off.len() - 1] + n as u32);
        }
        debug_assert_eq!(slot_row.len(), slots.len());

        // Static pin positions.
        let macro_centers: Vec<(String, (f64, f64))> = floorplan
            .macros
            .iter()
            .map(|m| {
                (m.instance.clone(), {
                    let (x, y) = m.center();
                    (x.value(), y.value())
                })
            })
            .collect();
        let n_pi = netlist.primary_inputs().len().max(1);
        let input_pins: Vec<(NetId, (f64, f64))> = netlist
            .primary_inputs()
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (
                    n,
                    (
                        0.0,
                        floorplan.height.value() * (i as f64 + 0.5) / n_pi as f64,
                    ),
                )
            })
            .collect();
        let n_po = netlist.primary_outputs().len().max(1);
        let output_pins: Vec<(NetId, (f64, f64))> = netlist
            .primary_outputs()
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (
                    n,
                    (
                        floorplan.width.value(),
                        floorplan.height.value() * (i as f64 + 0.5) / n_po as f64,
                    ),
                )
            })
            .collect();

        // Net membership, CSR on both sides (one entry per pin
        // occurrence, so incremental removals and rescans agree on
        // multiplicity).
        let n_nets = netlist.net_count();
        let mut cell_off = vec![0u32; placeable.len() + 1];
        for (ord, &ci) in placeable.iter().enumerate() {
            let pins = cells[ci].inputs.len() + cells[ci].outputs.len();
            cell_off[ord + 1] = cell_off[ord] + pins as u32;
        }
        let mut pin_count = vec![0u32; n_nets];
        for &ci in &placeable {
            for &net in cells[ci].inputs.iter().chain(cells[ci].outputs.iter()) {
                pin_count[net.index()] += 1;
            }
        }
        let mut macro_pins: Vec<(u32, PinRef)> = Vec::new();
        for (i, m) in floorplan.macros.iter().enumerate() {
            let cell = cells
                .iter()
                .find(|c| c.name == m.instance)
                .expect("macro instance exists in netlist");
            for &net in cell.inputs.iter().chain(cell.outputs.iter()) {
                macro_pins.push((net.index() as u32, PinRef::Macro(i)));
                pin_count[net.index()] += 1;
            }
        }
        for (i, (net, _)) in input_pins.iter().enumerate() {
            macro_pins.push((net.index() as u32, PinRef::Input(i)));
            pin_count[net.index()] += 1;
        }
        for (i, (net, _)) in output_pins.iter().enumerate() {
            macro_pins.push((net.index() as u32, PinRef::Output(i)));
            pin_count[net.index()] += 1;
        }
        let mut net_off = vec![0u32; n_nets + 1];
        for n in 0..n_nets {
            net_off[n + 1] = net_off[n] + pin_count[n];
        }
        let mut cursor: Vec<u32> = net_off[..n_nets].to_vec();
        let mut net_pins = vec![PinRef::Cell(usize::MAX); *net_off.last().unwrap() as usize];
        // (net, flat position index) per cell pin occurrence; sorted by
        // net within each cell below so move evaluation can merge the
        // two cells' net lists instead of sorting per move.
        let mut cell_pairs: Vec<(u32, u32)> =
            Vec::with_capacity(*cell_off.last().unwrap() as usize);
        for (ord, &ci) in placeable.iter().enumerate() {
            for &net in cells[ci].inputs.iter().chain(cells[ci].outputs.iter()) {
                let n = net.index();
                net_pins[cursor[n] as usize] = PinRef::Cell(ord);
                cell_pairs.push((n as u32, cursor[n]));
                cursor[n] += 1;
            }
        }
        for ord in 0..placeable.len() {
            cell_pairs[cell_off[ord] as usize..cell_off[ord + 1] as usize].sort_unstable();
        }
        let cell_nets: Vec<u32> = cell_pairs.iter().map(|&(n, _)| n).collect();
        let cell_pin_idx: Vec<u32> = cell_pairs.iter().map(|&(_, i)| i).collect();
        // Deduplicated, sentinel-terminated net list per cell for the
        // move evaluator's branch-light merge.
        let mut merge_off = vec![0u32; placeable.len() + 1];
        let mut merge_nets: Vec<u32> = Vec::with_capacity(cell_nets.len() + placeable.len());
        for ord in 0..placeable.len() {
            let mut prev = u32::MAX;
            for &n in &cell_nets[cell_off[ord] as usize..cell_off[ord + 1] as usize] {
                if n != prev {
                    merge_nets.push(n);
                    prev = n;
                }
            }
            merge_nets.push(u32::MAX);
            merge_off[ord + 1] = merge_nets.len() as u32;
        }
        for &(n, pin) in &macro_pins {
            net_pins[cursor[n as usize] as usize] = pin;
            cursor[n as usize] += 1;
        }

        let n_moves = if placeable.len() < 2 {
            0
        } else {
            ((placeable.len() * 30) as f64 * effort_moves) as usize
        };

        Ok(Problem {
            slots,
            macro_centers,
            input_pins,
            output_pins,
            net_off,
            net_pins,
            cell_off,
            cell_pin_idx,
            merge_off,
            merge_nets,
            slot_row,
            row_off,
            placeable,
            n_moves,
            die: (floorplan.width.value(), floorplan.height.value()),
        })
    }

    /// Borrowed view shared by the analytic seeder and the anneals.
    pub(crate) fn ctx(&self) -> Ctx<'_> {
        Ctx {
            slots: &self.slots,
            macro_centers: &self.macro_centers,
            input_pins: &self.input_pins,
            output_pins: &self.output_pins,
            net_off: &self.net_off,
            net_pins: &self.net_pins,
            cell_off: &self.cell_off,
            cell_pin_idx: &self.cell_pin_idx,
            merge_off: &self.merge_off,
            merge_nets: &self.merge_nets,
            slot_row: &self.slot_row,
            row_off: &self.row_off,
            n_placeable: self.placeable.len(),
            n_moves: self.n_moves,
            die: self.die,
        }
    }
}

/// The mutable annealing state of one start: the assignment, the flat
/// pin-position array, the cached per-net perimeters, the running cost,
/// and reusable scratch.
pub(crate) struct CostModel<'a> {
    ctx: &'a Ctx<'a>,
    pub(crate) slot_of: Vec<usize>,
    cell_in_slot: Vec<Option<usize>>,
    /// Position of every pin occurrence, parallel to `ctx.net_pins`.
    pos: Vec<(f64, f64)>,
    /// Cached half-perimeter of every net.
    perim: Vec<f64>,
    pub(crate) cost: f64,
    /// Nets touched by the current move, ascending and deduplicated.
    touched: Vec<u32>,
    /// Their re-derived perimeters, parallel to `touched`.
    new_perim: Vec<f64>,
}

impl<'a> CostModel<'a> {
    /// Ordered initial assignment (cell ordinal i → slot i).
    fn new(ctx: &'a Ctx<'a>) -> Self {
        Self::with_assignment(ctx, (0..ctx.n_placeable).collect())
    }

    /// Model over an explicit assignment (`slot_of[ord]` = slot of cell
    /// ordinal `ord`; must be a valid injection into the slot grid).
    pub(crate) fn with_assignment(ctx: &'a Ctx<'a>, slot_of: Vec<usize>) -> Self {
        debug_assert_eq!(slot_of.len(), ctx.n_placeable);
        let mut cell_in_slot: Vec<Option<usize>> = vec![None; ctx.slots.len()];
        for (ord, &slot) in slot_of.iter().enumerate() {
            debug_assert!(cell_in_slot[slot].is_none(), "slot {slot} double-booked");
            cell_in_slot[slot] = Some(ord);
        }
        let pos: Vec<(f64, f64)> = ctx
            .net_pins
            .iter()
            .map(|&pin| ctx.pin_position(pin, &slot_of))
            .collect();
        let mut model = CostModel {
            ctx,
            slot_of,
            cell_in_slot,
            pos,
            perim: vec![0.0; ctx.net_count()],
            cost: 0.0,
            touched: Vec::with_capacity(16),
            new_perim: Vec::with_capacity(16),
        };
        for net in 0..ctx.net_count() {
            model.perim[net] = model.net_perimeter(net);
        }
        model.cost = model.perim.iter().sum();
        model
    }

    /// Half-perimeter of one net from the flat position array: a
    /// branchless min/max fold over a contiguous slice. Zero for empty
    /// and single-pin nets.
    #[inline(always)]
    fn net_perimeter(&self, net: usize) -> f64 {
        let (s, e) = (
            self.ctx.net_off[net] as usize,
            self.ctx.net_off[net + 1] as usize,
        );
        let pins = &self.pos[s..e];
        if pins.len() < 2 {
            return 0.0;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in pins {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        (x1 - x0) + (y1 - y0)
    }

    /// Evaluates moving cell `a` into `target_slot` (swapping with its
    /// occupant `b`, if any) and returns the cost delta. The pin
    /// positions are left at their NEW values and `touched`/`new_perim`
    /// hold the affected nets; follow with [`Self::commit`] to keep the
    /// move or [`Self::revert`] to undo it.
    ///
    /// One pass does everything: the cells' presorted net lists are
    /// merged (deduplicated, ascending), and each merged net's old and
    /// new perimeter is accumulated as it streams by. The two sums grow
    /// in ascending net order — the same order a from-scratch
    /// evaluation adds in — so the delta is bit-identical to one.
    fn eval_move(&mut self, a: usize, b: Option<usize>, target_slot: usize) -> f64 {
        let ctx = self.ctx;
        let pa_new = ctx.slots[target_slot];
        let pb_new = ctx.slots[self.slot_of[a]];
        for &idx in ctx.pin_idx_of(a) {
            self.pos[idx as usize] = pa_new;
        }
        if let Some(b) = b {
            for &idx in ctx.pin_idx_of(b) {
                self.pos[idx as usize] = pb_new;
            }
        }

        self.touched.clear();
        self.new_perim.clear();
        let la = ctx.merge_nets_of(a);
        let lb = b.map_or(SENTINEL, |b| ctx.merge_nets_of(b));
        let (mut i, mut j) = (0, 0);
        let (mut old_sum, mut new_sum) = (0.0f64, 0.0f64);
        loop {
            let (x, y) = (la[i], lb[j]);
            let n = x.min(y);
            if n == u32::MAX {
                break;
            }
            i += usize::from(x == n);
            j += usize::from(y == n);
            let p = self.net_perimeter(n as usize);
            old_sum += self.perim[n as usize];
            new_sum += p;
            self.touched.push(n);
            self.new_perim.push(p);
        }
        new_sum - old_sum
    }

    /// Keeps an evaluated move: updates the assignment and commits the
    /// touched nets' new perimeters into the cache.
    fn commit(&mut self, a: usize, b: Option<usize>, target_slot: usize) {
        let old_slot = self.slot_of[a];
        self.slot_of[a] = target_slot;
        if let Some(b) = b {
            self.slot_of[b] = old_slot;
        }
        self.cell_in_slot[old_slot] = b;
        self.cell_in_slot[target_slot] = Some(a);
        for (k, &n) in self.touched.iter().enumerate() {
            self.perim[n as usize] = self.new_perim[k];
        }
    }

    /// Undoes an evaluated move by rewriting the displaced pins back to
    /// their pre-move positions (the assignment and perimeter cache were
    /// never changed).
    fn revert(&mut self, a: usize, b: Option<usize>, target_slot: usize) {
        let ctx = self.ctx;
        let pa_old = ctx.slots[self.slot_of[a]];
        for &idx in ctx.pin_idx_of(a) {
            self.pos[idx as usize] = pa_old;
        }
        if let Some(b) = b {
            let pb_old = ctx.slots[target_slot];
            for &idx in ctx.pin_idx_of(b) {
                self.pos[idx as usize] = pb_old;
            }
        }
    }

    /// From-scratch total HPWL at the current (committed) assignment,
    /// bypassing the perimeter cache.
    fn fresh_cost(&self) -> f64 {
        (0..self.ctx.net_count()).map(|n| self.net_perimeter(n)).sum()
    }

    /// Rewrites every cell pin's position from the current assignment
    /// (fixed macro/port pins never move). Used after rolling the
    /// assignment back to the best one seen.
    fn load_assignment_positions(&mut self) {
        for ord in 0..self.ctx.n_placeable {
            let p = self.ctx.slots[self.slot_of[ord]];
            for &idx in self.ctx.pin_idx_of(ord) {
                self.pos[idx as usize] = p;
            }
        }
    }
}

/// A lone merge sentinel, standing in for the net list of an absent
/// swap partner.
const SENTINEL: &[u32] = &[u32::MAX];

/// Annealing schedule parameters: cold starts search globally with the
/// full budget; seeded refinements polish locally with a fraction of
/// it.
struct Schedule {
    t0_mult: f64,
    window_mult: f64,
    budget_mult: f64,
}

const COLD: Schedule = Schedule {
    t0_mult: 1.0,
    window_mult: 1.0,
    budget_mult: 1.0,
};

const REFINE: Schedule = Schedule {
    t0_mult: REFINE_T0,
    window_mult: REFINE_WINDOW,
    budget_mult: REFINE_BUDGET,
};

/// The outcome of one annealing start.
struct StartResult {
    slot_of: Vec<usize>,
    /// Exact (from-scratch) HPWL of the best assignment seen.
    cost: f64,
    attempted: usize,
    accepted: usize,
}

/// One seeded annealing start over `init` (the ordered assignment when
/// `None`). With `audit` set, the running cost is compared against a
/// from-scratch recompute after **every** accepted move and the maximum
/// relative divergence is folded into it.
fn anneal(
    ctx: &Ctx<'_>,
    seed: u64,
    init: Option<&[usize]>,
    sched: &Schedule,
    mut audit: Option<&mut f64>,
) -> StartResult {
    let mut model = match init {
        Some(slot_of) => CostModel::with_assignment(ctx, slot_of.to_vec()),
        None => CostModel::new(ctx),
    };
    let mut rng = TestRng::seed_from_u64(seed);
    let n_moves = ((ctx.n_moves as f64 * sched.budget_mult) as usize).max(1);
    let t0 = (model.cost / (ctx.n_placeable.max(1) as f64)).max(1.0) * sched.t0_mult;
    let mut best_cost = model.cost;
    // Journal of accepted moves `(a, old_slot, b, target_slot)`. The
    // best assignment is reached by rolling the final assignment back
    // to the last improvement instead of snapshotting the whole
    // assignment on every improvement.
    let mut journal: Vec<(u32, u32, u32, u32)> = Vec::with_capacity(n_moves / 4);
    let mut journal_at_best = 0usize;
    let mut attempted = 0usize;
    let mut accepted = 0usize;
    for step in 0..n_moves {
        let frac = (1.0 - step as f64 / n_moves as f64).max(0.01);
        let t = t0 * (frac * frac).max(1e-4);
        let a = rng.gen_range(0..ctx.n_placeable);
        // TimberWolf-style range limiting: the target slot is drawn from
        // a 2-D window (rows x columns) around the cell's current slot
        // that shrinks with the temperature, so late moves are local
        // refinements in both axes instead of doomed cross-die jumps.
        // Seeded refinements start the window already shrunk
        // (`window_mult`): the analytic seed made the global decisions.
        let n_rows = ctx.row_off.len() - 1;
        let wfrac = frac * sched.window_mult;
        let wr = ((n_rows as f64 * wfrac) as usize).max(1);
        let target_slot = if 2 * wr >= n_rows {
            rng.gen_range(0..ctx.slots.len())
        } else {
            let cur = model.slot_of[a];
            let r = ctx.slot_row[cur] as usize;
            let row = rng.gen_range(r.saturating_sub(wr)..(r + wr).min(n_rows - 1) + 1);
            let rs = ctx.row_off[row] as usize;
            let row_len = ctx.row_off[row + 1] as usize - rs;
            let wc = ((row_len as f64 * wfrac) as usize).max(4);
            let c = (cur - ctx.row_off[r] as usize).min(row_len - 1);
            rs + rng.gen_range(c.saturating_sub(wc)..(c + wc).min(row_len - 1) + 1)
        };
        let b = model.cell_in_slot[target_slot];
        if b == Some(a) {
            continue;
        }
        attempted += 1;
        let delta = model.eval_move(a, b, target_slot);
        if delta > 0.0 && rng.gen::<f64>() >= (-delta / t).exp() {
            model.revert(a, b, target_slot);
        } else {
            let old_slot = model.slot_of[a];
            model.commit(a, b, target_slot);
            journal.push((
                a as u32,
                old_slot as u32,
                b.map_or(u32::MAX, |b| b as u32),
                target_slot as u32,
            ));
            accepted += 1;
            model.cost += delta;
            if let Some(max_drift) = audit.as_deref_mut() {
                let fresh = model.fresh_cost();
                let rel = (model.cost - fresh).abs() / fresh.max(1.0);
                if rel > *max_drift {
                    *max_drift = rel;
                }
            }
            #[cfg(debug_assertions)]
            if accepted.is_multiple_of(DRIFT_CHECK_INTERVAL) {
                let fresh = model.fresh_cost();
                debug_assert!(
                    (model.cost - fresh).abs() <= 1e-6 * fresh.max(1.0),
                    "incremental cost drifted: running {} vs fresh {fresh}",
                    model.cost
                );
            }
            if model.cost < best_cost {
                best_cost = model.cost;
                journal_at_best = journal.len();
            }
        }
    }
    // Keep the best assignment seen (annealing may end on an uphill
    // walk): undo the accepted moves past the last improvement, then
    // report the exact cost, free of accumulation error.
    let mut best_slot_of = std::mem::take(&mut model.slot_of);
    for &(a, old_slot, b, target_slot) in journal[journal_at_best..].iter().rev() {
        best_slot_of[a as usize] = old_slot as usize;
        if b != u32::MAX {
            best_slot_of[b as usize] = target_slot as usize;
        }
    }
    model.slot_of = best_slot_of;
    model.load_assignment_positions();
    let cost = model.fresh_cost();
    StartResult {
        slot_of: std::mem::take(&mut model.slot_of),
        cost,
        attempted,
        accepted,
    }
}

/// Places `netlist` on `floorplan`.
///
/// # Errors
///
/// Returns [`PhysicalError::DoesNotFit`] when the rows offer fewer slots
/// than there are placeable cells.
pub fn place(
    tech: &Technology,
    netlist: &Netlist,
    floorplan: &Floorplan,
    seed: u64,
    effort: PlaceEffort,
) -> Result<Placement, PhysicalError> {
    place_inner(tech, netlist, floorplan, seed, effort, None)
}

/// [`place`] with the incremental-cost audit enabled: every accepted
/// move cross-checks the running cost against a from-scratch recompute
/// (starts run serially so the audit accumulator is shared). Returns
/// the placement plus the maximum relative divergence observed. Test
/// hook — quadratic in design size, do not use on hot paths.
#[doc(hidden)]
pub fn place_audited(
    tech: &Technology,
    netlist: &Netlist,
    floorplan: &Floorplan,
    seed: u64,
    effort: PlaceEffort,
) -> Result<(Placement, f64), PhysicalError> {
    let mut drift = 0.0;
    let placement = place_inner(tech, netlist, floorplan, seed, effort, Some(&mut drift))?;
    Ok((placement, drift))
}

fn place_inner(
    tech: &Technology,
    netlist: &Netlist,
    floorplan: &Floorplan,
    seed: u64,
    effort: PlaceEffort,
    audit: Option<&mut f64>,
) -> Result<Placement, PhysicalError> {
    let problem = Problem::build(tech, netlist, floorplan, effort.moves)?;
    let ctx = problem.ctx();

    // Analytic seed: one deterministic B2B solve + legalization shared
    // by every start. Skipped for degenerate designs (< 2 movable
    // cells) and under `SeedMode::Cold`.
    let analytic = if effort.seed_mode == SeedMode::Analytic && ctx.n_placeable >= 2 {
        Some(crate::analytic::seed_assignment(&ctx))
    } else {
        None
    };
    let (init, analytic_iters, legalize_displacement) = match &analytic {
        Some(seed) => (
            Some(seed.slot_of.as_slice()),
            seed.cg_iters,
            seed.displacement,
        ),
        None => (None, 0, 0.0),
    };
    let sched = if init.is_some() { &REFINE } else { &COLD };

    // Multi-start: per-start seeds are a SplitMix64 walk from the
    // caller's seed; the winner is the strictly lowest final HPWL in
    // seed order, so the result is independent of the worker count and
    // of start completion order.
    let (slot_of, final_cost, attempted, accepted, starts_run) = if ctx.n_moves == 0 {
        // Nothing to anneal: keep the seed assignment (analytic when it
        // ran, ordered otherwise) and report the work actually done.
        let model = match init {
            Some(slot_of) => CostModel::with_assignment(&ctx, slot_of.to_vec()),
            None => CostModel::new(&ctx),
        };
        (model.slot_of, model.cost, 0, 0, 0)
    } else {
        let starts = effort.starts.max(1);
        let mut stream = seed;
        let seeds: Vec<u64> = (0..starts).map(|_| splitmix64(&mut stream)).collect();
        let results: Vec<StartResult> = if let Some(max_drift) = audit {
            // Audited runs share one accumulator, so they stay serial.
            seeds
                .into_iter()
                .map(|s| anneal(&ctx, s, init, sched, Some(max_drift)))
                .collect()
        } else if effort.parallel_starts {
            lim_par::par_map(seeds, |s| anneal(&ctx, s, init, sched, None))
        } else {
            seeds
                .into_iter()
                .map(|s| anneal(&ctx, s, init, sched, None))
                .collect()
        };
        let attempted: usize = results.iter().map(|r| r.attempted).sum();
        let accepted: usize = results.iter().map(|r| r.accepted).sum();
        let mut winner = 0;
        for (i, r) in results.iter().enumerate().skip(1) {
            if r.cost < results[winner].cost {
                winner = i;
            }
        }
        let best = results.into_iter().nth(winner).expect("winner exists");
        (best.slot_of, best.cost, attempted, accepted, starts)
    };

    // Emit positions.
    let cells = netlist.cells();
    let mut cell_pos: Vec<Option<(f64, f64)>> = vec![None; cells.len()];
    for (ord, &ci) in problem.placeable.iter().enumerate() {
        cell_pos[ci] = Some(problem.slots[slot_of[ord]]);
    }

    lim_obs::counter_add("place.moves", attempted as u64);
    lim_obs::counter_add("place.incremental_moves", accepted as u64);
    lim_obs::counter_add("place.starts", starts_run as u64);
    if analytic.is_some() {
        lim_obs::counter_add("place.analytic_iters", analytic_iters as u64);
        lim_obs::counter_add(
            "place.legalize_displacement",
            legalize_displacement.round() as u64,
        );
        lim_obs::counter_add("place.seeded", starts_run as u64);
    }
    let Problem {
        macro_centers,
        input_pins,
        output_pins,
        ..
    } = problem;
    Ok(Placement {
        cell_pos,
        macro_centers,
        input_pins,
        output_pins,
        hpwl: final_cost,
        moves: attempted,
        accepted,
        starts: starts_run,
        analytic_iters,
        legalize_displacement,
        seeded: analytic.is_some(),
    })
}

/// Returns the position of every pin of `net` under `placement`
/// (cells at their centers, macros at theirs, ports at the die edge).
pub fn net_pin_positions(
    netlist: &Netlist,
    placement: &Placement,
    floorplan: &Floorplan,
    net: NetId,
) -> Vec<(f64, f64)> {
    let mut pins = Vec::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        if cell.inputs.contains(&net) || cell.outputs.contains(&net) {
            if let Some(p) = placement.cell_pos[i] {
                pins.push(p);
            } else if let Some((_, p)) = placement
                .macro_centers
                .iter()
                .find(|(name, _)| name == &cell.name)
            {
                pins.push(*p);
            } else if let Some(m) = floorplan.macros.iter().find(|m| m.instance == cell.name) {
                let (x, y) = m.center();
                pins.push((x.value(), y.value()));
            }
        }
    }
    for (n, p) in &placement.input_pins {
        if *n == net {
            pins.push(*p);
        }
    }
    for (n, p) in &placement.output_pins {
        if *n == net {
            pins.push(*p);
        }
    }
    pins
}

/// Half-perimeter wirelength of one net.
pub fn hpwl(pins: &[(f64, f64)]) -> Microns {
    if pins.len() < 2 {
        return Microns::ZERO;
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in pins {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    Microns::new((x1 - x0) + (y1 - y0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::FloorplanOptions;
    use lim_brick::BrickLibrary;
    use lim_rtl::generators::decoder;

    #[test]
    fn placement_fits_and_improves() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 4, 16, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let seeded = place(&tech, &dec, &fp, 42, PlaceEffort::default()).unwrap();
        assert!(seeded.hpwl > 0.0);
        assert!(seeded.seeded);
        assert!(seeded.analytic_iters > 0);
        // All std cells have positions inside the die.
        for (i, pos) in seeded.cell_pos.iter().enumerate() {
            let p = pos.unwrap_or_else(|| panic!("cell {i} unplaced"));
            assert!(p.0 >= 0.0 && p.0 <= fp.width.value());
            assert!(p.1 >= 0.0 && p.1 <= fp.height.value());
        }
        // The refined placement beats its unrefined analytic seed.
        let unannealed = place(&tech, &dec, &fp, 42, PlaceEffort::new(0.0)).unwrap();
        assert!(
            seeded.hpwl <= unannealed.hpwl * 1.001,
            "refined {} vs analytic seed {}",
            seeded.hpwl,
            unannealed.hpwl
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 3, 8, false).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let p1 = place(&tech, &dec, &fp, 7, PlaceEffort::default()).unwrap();
        let p2 = place(&tech, &dec, &fp, 7, PlaceEffort::default()).unwrap();
        assert_eq!(p1.cell_pos, p2.cell_pos);
        assert_eq!(p1.hpwl, p2.hpwl);
    }

    #[test]
    fn hpwl_of_rectangle() {
        let pins = [(0.0, 0.0), (3.0, 4.0), (1.0, 1.0)];
        assert!((hpwl(&pins).value() - 7.0).abs() < 1e-12);
        assert_eq!(hpwl(&[(1.0, 1.0)]).value(), 0.0);
    }

    #[test]
    fn incremental_cost_matches_recompute() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let (placement, drift) =
            place_audited(&tech, &dec, &fp, 42, PlaceEffort::default()).unwrap();
        assert!(drift < 1e-9, "incremental cost drifted by {drift}");
        // Reported HPWL equals an API-level recompute over all nets.
        let recomputed: f64 = (0..dec.net_count())
            .map(|n| {
                hpwl(&net_pin_positions(
                    &dec,
                    &placement,
                    &fp,
                    NetId::from_index(n),
                ))
                .value()
            })
            .sum();
        assert!(
            (placement.hpwl - recomputed).abs() <= 1e-9 * recomputed.max(1.0),
            "reported {} vs recomputed {recomputed}",
            placement.hpwl
        );
    }

    #[test]
    fn cold_anneal_audit_still_clean() {
        // The audit hook covers both schedules.
        let tech = Technology::cmos65();
        let dec = decoder("dec", 4, 16, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let (placement, drift) =
            place_audited(&tech, &dec, &fp, 42, PlaceEffort::default().cold()).unwrap();
        assert!(drift < 1e-9, "incremental cost drifted by {drift}");
        assert!(!placement.seeded);
        assert_eq!(placement.analytic_iters, 0);
        assert_eq!(placement.legalize_displacement, 0.0);
    }

    #[test]
    fn multi_start_never_loses_to_single_start() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let single = place(&tech, &dec, &fp, 9, PlaceEffort::default()).unwrap();
        let multi = place(&tech, &dec, &fp, 9, PlaceEffort::starts(4)).unwrap();
        // The first start of the multi-start run is the single-start
        // run, so the winner can only be at least as good.
        assert!(
            multi.hpwl <= single.hpwl,
            "multi {} vs single {}",
            multi.hpwl,
            single.hpwl
        );
        assert_eq!(multi.starts, 4);
        assert!(multi.moves > single.moves);
    }

    #[test]
    fn serial_and_parallel_starts_are_byte_identical() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let par = place(&tech, &dec, &fp, 5, PlaceEffort::starts(4)).unwrap();
        let ser = place(&tech, &dec, &fp, 5, PlaceEffort::starts(4).serial()).unwrap();
        assert_eq!(par.cell_pos, ser.cell_pos);
        assert_eq!(par.hpwl.to_bits(), ser.hpwl.to_bits());
        assert_eq!(par.moves, ser.moves);
        assert_eq!(par.accepted, ser.accepted);
    }

    #[test]
    fn seeded_refine_tracks_cold_anneal_on_decoders() {
        // Generated decoders are the seed's worst case: their netlist
        // order is near-optimal by construction, so the ordered-start
        // cold anneal is a very strong baseline and the analytic solve
        // usually falls back to the ordered candidate. Even then the
        // seeded refinement must track a full cold anneal closely (the
        // 8% slack absorbs per-seed annealing noise at the refinement's
        // 15% move budget) while spending under half that budget. The
        // strict seeded ≤ cold requirement lives in the flow-netlist
        // test `tests/place_quality.rs`, where mapped netlists give
        // the analytic seed real work to do.
        let tech = Technology::cmos65();
        for (bits, words) in [(4usize, 16usize), (5, 32)] {
            let dec = decoder("dec", bits, words, true).unwrap();
            let fp =
                Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
                    .unwrap();
            let seeded = place(&tech, &dec, &fp, 7, PlaceEffort::default()).unwrap();
            let cold = place(&tech, &dec, &fp, 7, PlaceEffort::default().cold()).unwrap();
            assert!(seeded.seeded);
            assert!(!cold.seeded);
            assert!(
                seeded.hpwl <= cold.hpwl * 1.08,
                "dec{bits}x{words}: seeded {} vs cold {}",
                seeded.hpwl,
                cold.hpwl
            );
            // The refinement spends a fraction of the cold budget.
            assert!(seeded.moves < cold.moves / 2);
        }
    }

    #[test]
    fn counters_reflect_work_actually_done() {
        let tech = Technology::cmos65();
        // A single-cell design: nothing to anneal, so no moves, no
        // starts, and no analytic solve may be reported.
        let mut n = Netlist::new("one");
        let a = n.add_input("a");
        let out = n
            .add_gate(lim_rtl::StdCellKind::Inv, 1.0, &[a], "y")
            .unwrap();
        n.mark_output(out);
        let fp = Floorplan::build(&tech, &n, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let p = place(&tech, &n, &fp, 1, PlaceEffort::starts(8)).unwrap();
        assert_eq!(p.moves, 0);
        assert_eq!(p.accepted, 0);
        assert_eq!(p.starts, 0);
        assert!(!p.seeded);
        assert_eq!(p.analytic_iters, 0);

        // A real design reports the moves it evaluated, which is at
        // most the budget (no-op draws are excluded) and nonzero.
        let dec = decoder("dec", 4, 16, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let p = place(&tech, &dec, &fp, 1, PlaceEffort::default()).unwrap();
        assert!(p.moves > 0);
        assert!(p.accepted <= p.moves);
        assert_eq!(p.starts, 1);
        assert!(p.seeded);
    }
}
