//! Simulated-annealing standard-cell placement.
//!
//! Cells occupy uniform slots on the floorplan's rows; the annealer swaps
//! cells (or moves them to empty slots) to minimize total half-perimeter
//! wirelength. Seeded for reproducibility.

use crate::error::PhysicalError;
use crate::floorplan::Floorplan;
use lim_rtl::{CellKind, NetId, Netlist};
use lim_tech::units::Microns;
use lim_tech::Technology;
use lim_testkit::TestRng;

/// Where every pin of the design sits.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-cell position (cell index → center), `None` for macros (their
    /// position lives in the floorplan).
    pub cell_pos: Vec<Option<(f64, f64)>>,
    /// Per-macro-instance position, parallel to the floorplan macro list.
    pub macro_centers: Vec<(String, (f64, f64))>,
    /// Positions of primary-input pins (net index → position).
    pub input_pins: Vec<(NetId, (f64, f64))>,
    /// Positions of primary-output pins.
    pub output_pins: Vec<(NetId, (f64, f64))>,
    /// Final total HPWL in µm.
    pub hpwl: f64,
    /// Annealer moves attempted.
    pub moves: usize,
}

impl Placement {
    /// Position of the pin that `net` presents at cell `cell_idx`; the
    /// cell center for std cells, the macro center for macros.
    pub fn position_of_cell(&self, cell_idx: usize, floorplan: &Floorplan) -> (f64, f64) {
        if let Some(p) = self.cell_pos[cell_idx] {
            p
        } else {
            // Macro: find by order.
            let m = &floorplan.macros;
            let idx = self
                .macro_centers
                .iter()
                .position(|(name, _)| m.iter().any(|pm| &pm.instance == name))
                .unwrap_or(0);
            self.macro_centers
                .get(idx)
                .map(|(_, p)| *p)
                .unwrap_or((0.0, 0.0))
        }
    }
}

/// Placement effort: multiplier on the number of annealing moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceEffort(pub f64);

impl Default for PlaceEffort {
    fn default() -> Self {
        PlaceEffort(1.0)
    }
}

/// Places `netlist` on `floorplan`.
///
/// # Errors
///
/// Returns [`PhysicalError::DoesNotFit`] when the rows offer fewer slots
/// than there are placeable cells.
pub fn place(
    tech: &Technology,
    netlist: &Netlist,
    floorplan: &Floorplan,
    seed: u64,
    effort: PlaceEffort,
) -> Result<Placement, PhysicalError> {
    let cells = netlist.cells();
    let placeable: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| !matches!(c.kind, CellKind::Macro { .. }))
        .map(|(i, _)| i)
        .collect();

    // Uniform slot grid across the rows, sized from the average cell
    // footprint; shrink if rounding leaves too few slots.
    let total_area = netlist.stdcell_area(tech).value();
    let avg_width = if placeable.is_empty() {
        1.0
    } else {
        (total_area / placeable.len() as f64 / tech.row_height.value()).max(0.2)
    };
    let mut slot_w = avg_width;
    let build_slots = |slot_w: f64| -> Vec<(f64, f64)> {
        let mut slots = Vec::new();
        for row in &floorplan.rows {
            let usable = row.width().value();
            let n = (usable / slot_w).floor() as usize;
            for k in 0..n {
                slots.push((
                    row.x_start.value() + (k as f64 + 0.5) * slot_w,
                    row.y.value() + tech.row_height.value() / 2.0,
                ));
            }
        }
        slots
    };
    let mut slots = build_slots(slot_w);
    while slots.len() < placeable.len() && slot_w > 0.05 {
        slot_w *= 0.8;
        slots = build_slots(slot_w);
    }
    if slots.len() < placeable.len() {
        return Err(PhysicalError::DoesNotFit {
            demand: placeable.len() as f64,
            capacity: slots.len() as f64,
        });
    }

    // cell -> slot assignment (initial: in order).
    let mut slot_of: Vec<usize> = (0..placeable.len()).collect();
    // slot -> Option<cell ordinal>
    let mut cell_in_slot: Vec<Option<usize>> = vec![None; slots.len()];
    for (ord, &slot) in slot_of.iter().enumerate() {
        cell_in_slot[slot] = Some(ord);
    }

    // Static pin positions.
    let macro_centers: Vec<(String, (f64, f64))> = floorplan
        .macros
        .iter()
        .map(|m| (m.instance.clone(), {
            let (x, y) = m.center();
            (x.value(), y.value())
        }))
        .collect();
    let n_pi = netlist.primary_inputs().len().max(1);
    let input_pins: Vec<(NetId, (f64, f64))> = netlist
        .primary_inputs()
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            (
                n,
                (
                    0.0,
                    floorplan.height.value() * (i as f64 + 0.5) / n_pi as f64,
                ),
            )
        })
        .collect();
    let n_po = netlist.primary_outputs().len().max(1);
    let output_pins: Vec<(NetId, (f64, f64))> = netlist
        .primary_outputs()
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            (
                n,
                (
                    floorplan.width.value(),
                    floorplan.height.value() * (i as f64 + 0.5) / n_po as f64,
                ),
            )
        })
        .collect();

    // Net membership for incremental cost.
    let mut nets_of_cell: Vec<Vec<usize>> = vec![Vec::new(); placeable.len()];
    let mut pins_of_net: Vec<Vec<PinRef>> = vec![Vec::new(); netlist.net_count()];
    for (ord, &ci) in placeable.iter().enumerate() {
        for &net in cells[ci].inputs.iter().chain(cells[ci].outputs.iter()) {
            nets_of_cell[ord].push(net.index());
            pins_of_net[net.index()].push(PinRef::Cell(ord));
        }
    }
    for (i, m) in floorplan.macros.iter().enumerate() {
        let cell = cells
            .iter()
            .find(|c| c.name == m.instance)
            .expect("macro instance exists in netlist");
        for &net in cell.inputs.iter().chain(cell.outputs.iter()) {
            pins_of_net[net.index()].push(PinRef::Macro(i));
        }
    }
    for (i, (net, _)) in input_pins.iter().enumerate() {
        pins_of_net[net.index()].push(PinRef::Input(i));
    }
    for (i, (net, _)) in output_pins.iter().enumerate() {
        pins_of_net[net.index()].push(PinRef::Output(i));
    }

    let pin_pos = |pin: &PinRef, slot_of: &[usize]| -> (f64, f64) {
        match *pin {
            PinRef::Cell(ord) => slots[slot_of[ord]],
            PinRef::Macro(i) => macro_centers[i].1,
            PinRef::Input(i) => input_pins[i].1,
            PinRef::Output(i) => output_pins[i].1,
        }
    };
    let net_hpwl = |net: usize, slot_of: &[usize]| -> f64 {
        let pins = &pins_of_net[net];
        if pins.len() < 2 {
            return 0.0;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for p in pins {
            let (x, y) = pin_pos(p, slot_of);
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        (x1 - x0) + (y1 - y0)
    };

    let total_hpwl =
        |slot_of: &[usize]| -> f64 { (0..netlist.net_count()).map(|n| net_hpwl(n, slot_of)).sum() };

    // Annealing.
    let mut rng = TestRng::seed_from_u64(seed);
    let mut cost = total_hpwl(&slot_of);
    let n_moves = if placeable.len() < 2 {
        0
    } else {
        ((placeable.len() * 60) as f64 * effort.0) as usize
    };
    let t0 = (cost / (placeable.len().max(1) as f64)).max(1.0);
    let mut best_cost = cost;
    let mut best_slot_of = slot_of.clone();
    for step in 0..n_moves {
        let t = t0 * (1.0 - step as f64 / n_moves as f64).max(0.01);
        let a = rng.gen_range(0..placeable.len());
        let target_slot = rng.gen_range(0..slots.len());
        let b = cell_in_slot[target_slot];
        if b == Some(a) {
            continue;
        }
        // Affected nets.
        let mut nets: Vec<usize> = nets_of_cell[a].clone();
        if let Some(b) = b {
            nets.extend(&nets_of_cell[b]);
        }
        nets.sort_unstable();
        nets.dedup();
        let before: f64 = nets.iter().map(|&n| net_hpwl(n, &slot_of)).sum();
        // Apply move.
        let old_slot = slot_of[a];
        slot_of[a] = target_slot;
        if let Some(b) = b {
            slot_of[b] = old_slot;
        }
        cell_in_slot[old_slot] = b;
        cell_in_slot[target_slot] = Some(a);
        let after: f64 = nets.iter().map(|&n| net_hpwl(n, &slot_of)).sum();
        let delta = after - before;
        if delta > 0.0 && rng.gen::<f64>() >= (-delta / t).exp() {
            // Revert.
            slot_of[a] = old_slot;
            if let Some(b) = b {
                slot_of[b] = target_slot;
            }
            cell_in_slot[old_slot] = Some(a);
            cell_in_slot[target_slot] = b;
        } else {
            cost += delta;
            if cost < best_cost {
                best_cost = cost;
                best_slot_of.copy_from_slice(&slot_of);
            }
        }
    }
    // Keep the best assignment seen (annealing may end on an uphill walk).
    slot_of = best_slot_of;
    let final_cost = total_hpwl(&slot_of);

    // Emit positions.
    let mut cell_pos: Vec<Option<(f64, f64)>> = vec![None; cells.len()];
    for (ord, &ci) in placeable.iter().enumerate() {
        cell_pos[ci] = Some(slots[slot_of[ord]]);
    }

    lim_obs::counter_add("place.moves", n_moves as u64);
    Ok(Placement {
        cell_pos,
        macro_centers,
        input_pins,
        output_pins,
        hpwl: final_cost,
        moves: n_moves,
    })
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PinRef {
    Cell(usize),
    Macro(usize),
    Input(usize),
    Output(usize),
}

/// Returns the position of every pin of `net` under `placement`
/// (cells at their centers, macros at theirs, ports at the die edge).
pub fn net_pin_positions(
    netlist: &Netlist,
    placement: &Placement,
    floorplan: &Floorplan,
    net: NetId,
) -> Vec<(f64, f64)> {
    let mut pins = Vec::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        if cell.inputs.contains(&net) || cell.outputs.contains(&net) {
            if let Some(p) = placement.cell_pos[i] {
                pins.push(p);
            } else if let Some((_, p)) = placement
                .macro_centers
                .iter()
                .find(|(name, _)| name == &cell.name)
            {
                pins.push(*p);
            } else if let Some(m) = floorplan.macros.iter().find(|m| m.instance == cell.name) {
                let (x, y) = m.center();
                pins.push((x.value(), y.value()));
            }
        }
    }
    for (n, p) in &placement.input_pins {
        if *n == net {
            pins.push(*p);
        }
    }
    for (n, p) in &placement.output_pins {
        if *n == net {
            pins.push(*p);
        }
    }
    pins
}

/// Half-perimeter wirelength of one net.
pub fn hpwl(pins: &[(f64, f64)]) -> Microns {
    if pins.len() < 2 {
        return Microns::ZERO;
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in pins {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    Microns::new((x1 - x0) + (y1 - y0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::FloorplanOptions;
    use lim_brick::BrickLibrary;
    use lim_rtl::generators::decoder;

    #[test]
    fn placement_fits_and_improves() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 4, 16, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let seeded = place(&tech, &dec, &fp, 42, PlaceEffort::default()).unwrap();
        assert!(seeded.hpwl > 0.0);
        // All std cells have positions inside the die.
        for (i, pos) in seeded.cell_pos.iter().enumerate() {
            let p = pos.unwrap_or_else(|| panic!("cell {i} unplaced"));
            assert!(p.0 >= 0.0 && p.0 <= fp.width.value());
            assert!(p.1 >= 0.0 && p.1 <= fp.height.value());
        }
        // Annealed placement beats the trivial ordered placement.
        let unannealed = place(&tech, &dec, &fp, 42, PlaceEffort(0.0)).unwrap();
        assert!(
            seeded.hpwl <= unannealed.hpwl * 1.001,
            "annealed {} vs initial {}",
            seeded.hpwl,
            unannealed.hpwl
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 3, 8, false).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let p1 = place(&tech, &dec, &fp, 7, PlaceEffort::default()).unwrap();
        let p2 = place(&tech, &dec, &fp, 7, PlaceEffort::default()).unwrap();
        assert_eq!(p1.cell_pos, p2.cell_pos);
        assert_eq!(p1.hpwl, p2.hpwl);
    }

    #[test]
    fn hpwl_of_rectangle() {
        let pins = [(0.0, 0.0), (3.0, 4.0), (1.0, 1.0)];
        assert!((hpwl(&pins).value() - 7.0).abs() < 1e-12);
        assert_eq!(hpwl(&[(1.0, 1.0)]).value(), 0.0);
    }
}
