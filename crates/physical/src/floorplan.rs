//! Die sizing, macro legalization and standard-cell rows.
//!
//! Brick banks are placed as macros along the left (west) side of the die,
//! stacked bottom-up; the remaining area becomes standard-cell rows. The
//! LiM flow's cells are pattern-compatible with bitcells, so no guard
//! spacing is charged between macros and logic; a conventional-ASIC
//! comparison can opt into guard bands via
//! [`FloorplanOptions::conventional_logic`], which inserts the
//! restrictive-patterning hotspot spacing of `lim-tech::patterns` at each
//! memory/logic boundary — one of the two sources of the paper's area
//! advantage.

use crate::error::PhysicalError;
use lim_brick::BrickLibrary;
use lim_rtl::{CellKind, Netlist};
use lim_tech::patterns::{PatternClass, PatternRules};
use lim_tech::units::{Microns, SquareMicrons};
use lim_tech::Technology;

/// Routing-channel gap legalized between adjacent macros (two cell rows):
/// every extra bank pays for its access wiring.
pub const MACRO_CHANNEL: Microns = Microns::new(3.6);

/// A placed macro (brick bank).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedMacro {
    /// Instance name from the netlist.
    pub instance: String,
    /// Library entry name.
    pub lib_name: String,
    /// Lower-left x.
    pub x: Microns,
    /// Lower-left y.
    pub y: Microns,
    /// Width.
    pub width: Microns,
    /// Height.
    pub height: Microns,
}

impl PlacedMacro {
    /// Center point, used as the pin position for wire estimation.
    pub fn center(&self) -> (Microns, Microns) {
        (
            Microns::new(self.x.value() + self.width.value() / 2.0),
            Microns::new(self.y.value() + self.height.value() / 2.0),
        )
    }
}

/// One standard-cell row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Row baseline y.
    pub y: Microns,
    /// Left x of the usable span.
    pub x_start: Microns,
    /// Right x of the usable span.
    pub x_end: Microns,
}

impl Row {
    /// Usable width.
    pub fn width(&self) -> Microns {
        Microns::new(self.x_end.value() - self.x_start.value())
    }
}

/// Floorplanning options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloorplanOptions {
    /// Standard-cell row utilization target (0, 1].
    pub utilization: f64,
    /// Treat the logic as conventional (non-pattern-construct) cells:
    /// guard spacing is charged around every macro (the non-LiM flow).
    pub conventional_logic: bool,
}

impl Default for FloorplanOptions {
    fn default() -> Self {
        FloorplanOptions {
            utilization: 0.7,
            conventional_logic: false,
        }
    }
}

/// The computed floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Die width.
    pub width: Microns,
    /// Die height.
    pub height: Microns,
    /// Placed macros.
    pub macros: Vec<PlacedMacro>,
    /// Standard-cell rows.
    pub rows: Vec<Row>,
    /// Guard area charged for pattern incompatibility (zero for LiM).
    pub guard_area: SquareMicrons,
}

impl Floorplan {
    /// Builds a floorplan for `netlist` using macros from `library`.
    ///
    /// # Errors
    ///
    /// * [`PhysicalError::BadOption`] for a utilization outside (0, 1].
    /// * [`PhysicalError::Brick`] when a macro has no library entry.
    /// * [`PhysicalError::DoesNotFit`] when rows cannot host the cells.
    pub fn build(
        tech: &Technology,
        netlist: &Netlist,
        library: &BrickLibrary,
        options: &FloorplanOptions,
    ) -> Result<Self, PhysicalError> {
        if !(options.utilization > 0.0 && options.utilization <= 1.0) {
            return Err(PhysicalError::BadOption {
                name: "utilization",
                value: options.utilization,
            });
        }

        // Gather macro footprints.
        let rules = PatternRules::cmos65();
        let guard = if options.conventional_logic {
            rules
                .check(PatternClass::BitcellArray, PatternClass::ConventionalLogic)
                .required_spacing
        } else {
            Microns::ZERO
        };

        let mut macro_dims: Vec<(String, String, Microns, Microns)> = Vec::new();
        for cell in netlist.cells() {
            if let CellKind::Macro { lib_name } = &cell.kind {
                let entry = library.get(lib_name)?;
                macro_dims.push((
                    cell.name.clone(),
                    lib_name.clone(),
                    entry.width,
                    entry.height,
                ));
            }
        }

        let std_area = netlist.stdcell_area(tech).value() / options.utilization;
        let macro_col_width = macro_dims
            .iter()
            .map(|(_, _, w, _)| w.value() + 2.0 * guard.value())
            .fold(0.0f64, f64::max);
        let macro_col_height: f64 = macro_dims
            .iter()
            .map(|(_, _, _, h)| h.value() + 2.0 * guard.value() + MACRO_CHANNEL.value())
            .sum::<f64>()
            - if macro_dims.is_empty() {
                0.0
            } else {
                MACRO_CHANNEL.value()
            };

        // Die shape: near-square for the std-cell region next to the
        // macro column.
        let row_height = tech.row_height.value();
        let min_height = macro_col_height.max(4.0 * row_height);
        let std_width = (std_area / min_height).max(4.0);
        let width = Microns::new(macro_col_width + std_width + 2.0);
        let height = Microns::new(min_height.max(std_area / std_width));

        // Stack macros bottom-up in the left column.
        let mut macros = Vec::with_capacity(macro_dims.len());
        let mut y = guard.value();
        for (instance, lib_name, w, h) in macro_dims {
            macros.push(PlacedMacro {
                instance,
                lib_name,
                x: Microns::new(guard.value()),
                y: Microns::new(y),
                width: w,
                height: h,
            });
            y += h.value() + 2.0 * guard.value() + MACRO_CHANNEL.value();
        }

        // Rows fill the region right of the macro column.
        let x_start = Microns::new(macro_col_width + 1.0);
        let x_end = Microns::new(width.value() - 1.0);
        let n_rows = (height.value() / row_height).floor() as usize;
        let rows: Vec<Row> = (0..n_rows)
            .map(|i| Row {
                y: Microns::new(i as f64 * row_height),
                x_start,
                x_end,
            })
            .collect();

        let capacity: f64 = rows.iter().map(|r| r.width().value() * row_height).sum();
        let demand = netlist.stdcell_area(tech).value();
        if demand > capacity {
            return Err(PhysicalError::DoesNotFit { demand, capacity });
        }

        let guard_area = SquareMicrons::new(if options.conventional_logic {
            macros
                .iter()
                .map(|m| {
                    (m.width.value() + 2.0 * guard.value()) * (m.height.value() + 2.0 * guard.value())
                        - m.width.value() * m.height.value()
                })
                .sum()
        } else {
            0.0
        });

        Ok(Floorplan {
            width,
            height,
            macros,
            rows,
            guard_area,
        })
    }

    /// Die area.
    pub fn die_area(&self) -> SquareMicrons {
        self.width * self.height
    }

    /// Macro area (without guards).
    pub fn macro_area(&self) -> SquareMicrons {
        SquareMicrons::new(
            self.macros
                .iter()
                .map(|m| m.width.value() * m.height.value())
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_brick::{BitcellKind, BrickSpec};
    use lim_rtl::generators::decoder;

    fn lib_with_brick(tech: &Technology) -> BrickLibrary {
        let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap();
        BrickLibrary::generate(tech, &[spec], &[2]).unwrap()
    }

    #[test]
    fn pure_logic_floorplan() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        assert!(fp.rows.len() >= 4);
        assert!(fp.die_area().value() > dec.stdcell_area(&tech).value());
        assert_eq!(fp.macros.len(), 0);
        assert_eq!(fp.guard_area.value(), 0.0);
    }

    #[test]
    fn macro_floorplan_stacks_bricks() {
        let tech = Technology::cmos65();
        let lib = lib_with_brick(&tech);
        let mut n = Netlist::new("mem");
        let clk = n.add_clock("clk");
        let outs1 = n.add_macro("u_b0", "brick_8t_16_10_x2", &[clk], 10, "a0");
        let outs2 = n.add_macro("u_b1", "brick_8t_16_10_x2", &[clk], 10, "a1");
        for o in outs1.into_iter().chain(outs2) {
            n.mark_output(o);
        }
        let fp = Floorplan::build(&tech, &n, &lib, &FloorplanOptions::default()).unwrap();
        assert_eq!(fp.macros.len(), 2);
        // Stacked: second macro sits above the first.
        assert!(fp.macros[1].y > fp.macros[0].y);
        assert!(fp.height.value() >= fp.macros[1].y.value() + fp.macros[1].height.value());
    }

    #[test]
    fn conventional_logic_pays_guard_area() {
        let tech = Technology::cmos65();
        let lib = lib_with_brick(&tech);
        let mut n = Netlist::new("mem");
        let clk = n.add_clock("clk");
        let outs = n.add_macro("u_b0", "brick_8t_16_10_x2", &[clk], 10, "a0");
        for o in outs {
            n.mark_output(o);
        }
        let lim = Floorplan::build(&tech, &n, &lib, &FloorplanOptions::default()).unwrap();
        let conv = Floorplan::build(
            &tech,
            &n,
            &lib,
            &FloorplanOptions {
                conventional_logic: true,
                ..FloorplanOptions::default()
            },
        )
        .unwrap();
        assert_eq!(lim.guard_area.value(), 0.0);
        assert!(conv.guard_area.value() > 0.0);
        assert!(conv.die_area() > lim.die_area());
    }

    #[test]
    fn missing_macro_entry_is_an_error() {
        let tech = Technology::cmos65();
        let mut n = Netlist::new("mem");
        let clk = n.add_clock("clk");
        let outs = n.add_macro("u_b0", "no_such_brick", &[clk], 4, "a");
        for o in outs {
            n.mark_output(o);
        }
        let err = Floorplan::build(&tech, &n, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap_err();
        assert!(matches!(err, PhysicalError::Brick(_)));
    }

    #[test]
    fn bad_utilization_rejected() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 3, 8, false).unwrap();
        let err = Floorplan::build(
            &tech,
            &dec,
            &BrickLibrary::new(),
            &FloorplanOptions {
                utilization: 0.0,
                ..FloorplanOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PhysicalError::BadOption { .. }));
    }
}
