//! Static timing analysis (the PrimeTime stand-in).
//!
//! Slew-aware arrival propagation over the mapped netlist using the
//! NLDM-lite gate model of `lim-rtl::stdcell` and the generated brick
//! LUTs of `lim-brick::library`. Endpoints are flip-flop data pins
//! (constant setup), macro input pins (library setup) and primary
//! outputs; the worst endpoint sets the minimum clock period.

use crate::error::PhysicalError;
use crate::route::NetRoute;
use lim_brick::BrickLibrary;
use lim_rtl::{CellKind, NetId, Netlist};
use lim_tech::units::{Megahertz, Picoseconds};
use lim_tech::Technology;

/// Setup requirement of a standard-cell flip-flop.
pub const DFF_SETUP: Picoseconds = Picoseconds::new(20.0);
/// Hold requirement of a standard-cell flip-flop.
pub const DFF_HOLD: Picoseconds = Picoseconds::new(5.0);
/// External input delay assumed for the hold pass: primary inputs are
/// launched by upstream registers, so they cannot change before this
/// offset after the clock edge (the SDC `set_input_delay -min`).
pub const INPUT_MIN_DELAY: Picoseconds = Picoseconds::new(15.0);
/// Slew assumed at clock pins (an idealized clock tree).
pub const CLOCK_SLEW: Picoseconds = Picoseconds::new(20.0);
/// Slew of macro outputs (the brick's output buffer).
pub const MACRO_OUT_SLEW: Picoseconds = Picoseconds::new(30.0);

/// Result of timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Minimum clock period satisfying every endpoint.
    pub min_period: Picoseconds,
    /// Maximum clock frequency.
    pub fmax: Megahertz,
    /// The binding endpoint's name.
    pub worst_endpoint: String,
    /// Data arrival at the binding endpoint.
    pub worst_arrival: Picoseconds,
    /// Instance names from launch to capture along the critical path.
    pub critical_path: Vec<String>,
    /// Worst hold slack over all clocked endpoints (positive = clean;
    /// `None` when the design has no clocked endpoint).
    pub worst_hold_slack: Option<Picoseconds>,
    /// Number of timing endpoints evaluated.
    pub endpoints: usize,
}

#[derive(Debug, Clone, Copy)]
struct Arrival {
    time: f64,
    slew: f64,
    /// Index of the predecessor net on the worst path (for traceback).
    pred: Option<usize>,
}

/// Runs STA on a validated netlist with routed parasitics.
///
/// # Errors
///
/// * [`PhysicalError::Rtl`] for netlist validation failures.
/// * [`PhysicalError::Brick`] for missing library entries.
/// * [`PhysicalError::NoEndpoints`] when nothing constrains the clock.
pub fn analyze(
    tech: &Technology,
    netlist: &Netlist,
    routes: &[NetRoute],
    library: &BrickLibrary,
    input_slew: Picoseconds,
) -> Result<TimingReport, PhysicalError> {
    netlist.validate()?;
    // One topological sort serves both the max (setup) and min (hold)
    // passes.
    let order = netlist.topo_order()?;
    let n_nets = netlist.net_count();
    let mut arrivals: Vec<Option<Arrival>> = vec![None; n_nets];
    // Which cell drives each net and its name (for traceback labels).
    let driver = netlist.driver_map();

    // Per-net wire delay, computed once up front instead of on every
    // pin visit of both passes.
    let wire_delays: Vec<f64> = routes
        .iter()
        .map(|r| r.wire_res.value() * (r.wire_cap.value() / 2.0 + r.pin_cap.value()))
        .collect();

    // Launch points: primary inputs at t=0, sequential outputs at clk-to-q.
    for &pi in netlist.primary_inputs() {
        arrivals[pi.index()] = Some(Arrival {
            time: 0.0,
            slew: if Some(pi) == netlist.clock() {
                CLOCK_SLEW.value()
            } else {
                input_slew.value()
            },
            pred: None,
        });
    }
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Gate { kind, drive } if kind.is_sequential() => {
                let q = cell.outputs[0];
                let load = routes[q.index()].total_cap();
                let d = kind.delay(tech, *drive, load, CLOCK_SLEW);
                arrivals[q.index()] = Some(Arrival {
                    time: d.value(),
                    slew: kind.output_slew(tech, *drive, load).value(),
                    pred: None,
                });
            }
            CellKind::Macro { lib_name } => {
                let entry = library.get(lib_name)?;
                for &o in &cell.outputs {
                    let load = routes[o.index()].total_cap();
                    let d = entry.clk_to_q(load, CLOCK_SLEW);
                    arrivals[o.index()] = Some(Arrival {
                        time: d.value(),
                        slew: MACRO_OUT_SLEW.value(),
                        pred: None,
                    });
                }
            }
            CellKind::Tie { .. } => {
                arrivals[cell.outputs[0].index()] = Some(Arrival {
                    time: 0.0,
                    slew: 0.0,
                    pred: None,
                });
            }
            _ => {}
        }
    }

    let wire_delay = |net: NetId| -> f64 { wire_delays[net.index()] };

    // Propagate through combinational cells in topological order.
    for &cid in &order {
        let cell = netlist.cell(cid);
        let (kind, drive) = match &cell.kind {
            CellKind::Gate { kind, drive } if !kind.is_sequential() => (kind, *drive),
            _ => continue,
        };
        let mut worst: Option<Arrival> = None;
        for &input in &cell.inputs {
            let Some(a) = arrivals[input.index()] else {
                continue;
            };
            let at_pin = a.time + wire_delay(input);
            if worst.is_none_or(|w| at_pin > w.time) {
                worst = Some(Arrival {
                    time: at_pin,
                    slew: a.slew,
                    pred: Some(input.index()),
                });
            }
        }
        let Some(w) = worst else { continue };
        let out = cell.outputs[0];
        let load = routes[out.index()].total_cap();
        let delay = kind.delay(tech, drive, load, Picoseconds::new(w.slew));
        arrivals[out.index()] = Some(Arrival {
            time: w.time + delay.value(),
            slew: kind.output_slew(tech, drive, load).value(),
            pred: w.pred,
        });
    }

    // Endpoints. Names are derived lazily — only the binding endpoint
    // is ever formatted, so collecting thousands of endpoints does not
    // build thousands of strings.
    enum EndpointKind {
        /// D pin of the flip-flop at this cell index.
        DffD(usize),
        /// Non-clock input pin of the macro at this cell index.
        MacroPin(usize, NetId),
        /// Internal cycle bound of the macro at this cell index.
        MacroInternal(usize),
        /// Primary output.
        Po(NetId),
    }
    struct Endpoint {
        kind: EndpointKind,
        required: f64,
        via_net: usize,
    }
    impl EndpointKind {
        fn name(&self, netlist: &Netlist) -> String {
            match *self {
                EndpointKind::DffD(c) => format!("{}/D", netlist.cells()[c].name),
                EndpointKind::MacroPin(c, net) => {
                    format!("{}/{}", netlist.cells()[c].name, netlist.net_name(net))
                }
                EndpointKind::MacroInternal(c) => {
                    format!("{}/internal", netlist.cells()[c].name)
                }
                EndpointKind::Po(net) => format!("PO {}", netlist.net_name(net)),
            }
        }
    }
    let mut endpoints: Vec<Endpoint> = Vec::new();
    for (ci, cell) in netlist.cells().iter().enumerate() {
        match &cell.kind {
            CellKind::Gate { kind, .. } if kind.is_sequential() => {
                for &input in &cell.inputs {
                    if let Some(a) = arrivals[input.index()] {
                        endpoints.push(Endpoint {
                            kind: EndpointKind::DffD(ci),
                            required: a.time + wire_delay(input) + DFF_SETUP.value(),
                            via_net: input.index(),
                        });
                    }
                }
            }
            CellKind::Macro { lib_name } => {
                let entry = library.get(lib_name)?;
                for &input in &cell.inputs {
                    if Some(input) == netlist.clock() {
                        continue;
                    }
                    if let Some(a) = arrivals[input.index()] {
                        endpoints.push(Endpoint {
                            kind: EndpointKind::MacroPin(ci, input),
                            required: a.time
                                + wire_delay(input)
                                + entry.estimate.setup.value(),
                            via_net: input.index(),
                        });
                    }
                }
                // The macro's internal cycle also bounds the period.
                endpoints.push(Endpoint {
                    kind: EndpointKind::MacroInternal(ci),
                    required: entry.estimate.min_cycle().value(),
                    via_net: cell.outputs.first().map(|o| o.index()).unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    for &po in netlist.primary_outputs() {
        if let Some(a) = arrivals[po.index()] {
            endpoints.push(Endpoint {
                kind: EndpointKind::Po(po),
                required: a.time + wire_delay(po),
                via_net: po.index(),
            });
        }
    }
    lim_obs::counter_add("sta.endpoints", endpoints.len() as u64);
    let worst = endpoints
        .iter()
        .max_by(|a, b| a.required.total_cmp(&b.required))
        .ok_or(PhysicalError::NoEndpoints)?;

    // ---- Hold analysis: earliest data arrival at clocked endpoints ----
    // Min-arrival propagation mirrors the max pass. Same delay model
    // (single corner); the structural short-path question is whether any
    // launch reaches a capture input faster than the hold window.
    let mut min_arrivals: Vec<Option<f64>> = vec![None; n_nets];
    for &pi in netlist.primary_inputs() {
        min_arrivals[pi.index()] = Some(INPUT_MIN_DELAY.value());
    }
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Gate { kind, drive } if kind.is_sequential() => {
                let q = cell.outputs[0];
                let load = routes[q.index()].total_cap();
                min_arrivals[q.index()] =
                    Some(kind.delay(tech, *drive, load, CLOCK_SLEW).value());
            }
            CellKind::Macro { lib_name } => {
                let entry = library.get(lib_name)?;
                for &o in &cell.outputs {
                    let load = routes[o.index()].total_cap();
                    min_arrivals[o.index()] = Some(entry.clk_to_q(load, CLOCK_SLEW).value());
                }
            }
            CellKind::Tie { .. } => {
                min_arrivals[cell.outputs[0].index()] = Some(0.0);
            }
            _ => {}
        }
    }
    for &cid in &order {
        let cell = netlist.cell(cid);
        let (kind, drive) = match &cell.kind {
            CellKind::Gate { kind, drive } if !kind.is_sequential() => (kind, *drive),
            _ => continue,
        };
        let earliest = cell
            .inputs
            .iter()
            .filter_map(|&i| min_arrivals[i.index()].map(|a| a + wire_delay(i)))
            .fold(f64::INFINITY, f64::min);
        if earliest.is_finite() {
            let out = cell.outputs[0];
            let load = routes[out.index()].total_cap();
            let delay = kind.delay(tech, drive, load, CLOCK_SLEW);
            min_arrivals[out.index()] = Some(earliest + delay.value());
        }
    }
    let mut worst_hold_slack: Option<f64> = None;
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Gate { kind, .. } if kind.is_sequential() => {
                for &input in &cell.inputs {
                    if let Some(a) = min_arrivals[input.index()] {
                        let slack = a + wire_delay(input) - DFF_HOLD.value();
                        worst_hold_slack =
                            Some(worst_hold_slack.map_or(slack, |w: f64| w.min(slack)));
                    }
                }
            }
            CellKind::Macro { lib_name } => {
                let entry = library.get(lib_name)?;
                for &input in &cell.inputs {
                    if Some(input) == netlist.clock() {
                        continue;
                    }
                    if let Some(a) = min_arrivals[input.index()] {
                        let slack =
                            a + wire_delay(input) - entry.estimate.hold.value();
                        worst_hold_slack =
                            Some(worst_hold_slack.map_or(slack, |w: f64| w.min(slack)));
                    }
                }
            }
            _ => {}
        }
    }

    // Trace the critical path back through predecessor nets.
    let mut path = Vec::new();
    let mut cur = Some(worst.via_net);
    let mut guard = 0;
    while let Some(net) = cur {
        if let Some(d) = driver[net] {
            path.push(netlist.cell(d).name.clone());
        } else {
            path.push(format!("PI {}", netlist.net_name(NetId::from_index(net))));
        }
        cur = arrivals[net].and_then(|a| a.pred);
        guard += 1;
        if guard > n_nets {
            break;
        }
    }
    path.reverse();

    let min_period = Picoseconds::new(worst.required.max(1.0));
    Ok(TimingReport {
        min_period,
        fmax: min_period.to_frequency(),
        worst_endpoint: worst.kind.name(netlist),
        worst_arrival: Picoseconds::new(worst.required),
        critical_path: path,
        worst_hold_slack: worst_hold_slack.map(Picoseconds::new),
        endpoints: endpoints.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Floorplan, FloorplanOptions};
    use crate::place::{place, PlaceEffort};
    use crate::route::estimate;
    use lim_brick::{BitcellKind, BrickSpec};
    use lim_rtl::generators::{decoder, ripple_adder};

    fn run_sta(netlist: &Netlist, library: &BrickLibrary) -> TimingReport {
        let tech = Technology::cmos65();
        let fp =
            Floorplan::build(&tech, netlist, library, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, netlist, &fp, 3, PlaceEffort::default()).unwrap();
        let routes = estimate(&tech, netlist, &pl, &fp, library).unwrap();
        analyze(&tech, netlist, &routes, library, Picoseconds::new(20.0)).unwrap()
    }

    #[test]
    fn decoder_timing_reasonable() {
        let dec = decoder("dec", 5, 32, true).unwrap();
        let rep = run_sta(&dec, &BrickLibrary::new());
        // A handful of gate levels: tens to a few hundred ps.
        assert!(rep.min_period.value() > 10.0 && rep.min_period.value() < 1000.0,
            "period {}", rep.min_period);
        assert!(!rep.critical_path.is_empty());
        assert!(rep.worst_endpoint.starts_with("PO"));
    }

    #[test]
    fn wider_adder_is_slower() {
        let a4 = run_sta(&ripple_adder("a4", 4).unwrap(), &BrickLibrary::new());
        let a16 = run_sta(&ripple_adder("a16", 16).unwrap(), &BrickLibrary::new());
        assert!(a16.min_period > a4.min_period);
        // The ripple carry chain dominates: path length grows with width.
        assert!(a16.critical_path.len() > a4.critical_path.len());
    }

    #[test]
    fn macro_bounds_period() {
        let tech = Technology::cmos65();
        let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap();
        let lib = BrickLibrary::generate(&tech, &[spec], &[2]).unwrap();
        let mut n = Netlist::new("mem");
        let clk = n.add_clock("clk");
        let en = n.add_input("en");
        let outs = n.add_macro("u_b", "brick_8t_16_10_x2", &[clk, en], 10, "arbl");
        for o in outs {
            n.mark_output(o);
        }
        let rep = run_sta(&n, &lib);
        let entry = lib.get("brick_8t_16_10_x2").unwrap();
        assert!(rep.min_period >= entry.estimate.min_cycle());
    }

    #[test]
    fn hold_analysis_reports_slack() {
        // A registered pipeline with a gate between flops: the short path
        // (Q → inverter → D) comfortably exceeds the hold window.
        let mut n = Netlist::new("hold");
        n.add_clock("clk");
        let d = n.add_input("d");
        let q1 = n.add_dff(d, 1.0, "q1");
        let inv = n
            .add_gate(lim_rtl::StdCellKind::Inv, 1.0, &[q1], "inv")
            .unwrap();
        let q2 = n.add_dff(inv, 1.0, "q2");
        n.mark_output(q2);
        let rep = run_sta(&n, &BrickLibrary::new());
        let slack = rep.worst_hold_slack.expect("clocked endpoints exist");
        assert!(slack.value() > 0.0, "hold slack {slack}");
    }

    #[test]
    fn combinational_design_has_no_hold_endpoints() {
        let dec = decoder("dec", 3, 8, false).unwrap();
        let rep = run_sta(&dec, &BrickLibrary::new());
        assert!(rep.worst_hold_slack.is_none());
    }

    #[test]
    fn registered_design_has_dff_endpoints() {
        let mut n = Netlist::new("reg");
        n.add_clock("clk");
        let d = n.add_input("d");
        let inv = n
            .add_gate(lim_rtl::StdCellKind::Inv, 1.0, &[d], "inv")
            .unwrap();
        let q = n.add_dff(inv, 1.0, "q");
        n.mark_output(q);
        let rep = run_sta(&n, &BrickLibrary::new());
        // Endpoint could be the DFF D pin or the PO; period covers both.
        assert!(rep.min_period.value() >= DFF_SETUP.value());
    }
}
