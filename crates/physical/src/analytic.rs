//! Analytic global placement: a bound-to-bound (B2B) quadratic net
//! model solved per axis with Jacobi-preconditioned conjugate
//! gradient, then legalized Tetris-style onto the row/slot grid.
//!
//! # Net model
//!
//! Each net with `p ≥ 2` pins contributes, per axis, edges from its
//! two boundary pins (the min- and max-coordinate pins at the current
//! positions) to every other pin, weighted `2 / ((p-1) · max(|xi-xj|,
//! ε))`. Summing a B2B edge's quadratic cost `w·(xi-xj)²` over a net
//! reproduces that net's HPWL exactly at the linearization point, so
//! minimizing the quadratic form minimizes a faithful local model of
//! the annealer's true objective. Because the weights depend on the
//! positions they linearize, the solve supports a fixed number of
//! reweighting rounds, rebuilding the model at the previous round's
//! spread solution under growing anchors; the default
//! ([`REWEIGHT_ROUNDS`]) is a single anchor-free round, which recovers
//! the connectivity ordering at the lowest seed cost.
//!
//! Fixed pins — macro centers and the floorplan's primary-I/O pads —
//! enter the model as constants: their edge weights fold into the
//! diagonal and right-hand side, anchoring the system. A weak pull
//! ([`CENTER_ANCHOR`]) toward the die center keeps the matrix
//! positive-definite even for components with no fixed pin.
//!
//! # Determinism
//!
//! The solver is strictly serial — on the single-core bench box there
//! is nothing to win by threading a solve this small, and serial
//! summation makes the result trivially byte-identical for any
//! `LIM_PAR_THREADS` value. Iteration counts are fixed; the only early
//! exit is a relative-residual test on deterministically-summed
//! scalars, so it fires identically on every run.
//!
//! # Legalization
//!
//! Tetris-style: cells sort by solved x (ordinal-tie-broken), then each
//! takes the cheapest per-row append slot (rows keep a cursor; a cell
//! placed in a row consumes the row's next free slot, so no slot is
//! wasted and the result is a valid injection whenever the grid has
//! enough slots — exactly the precondition `Problem::build` already
//! enforced).

use crate::error::PhysicalError;
use crate::floorplan::Floorplan;
use crate::place::{Ctx, PinRef, Problem};
use lim_rtl::Netlist;
use lim_tech::Technology;

/// B2B reweighting rounds (model rebuilds at the previous solution).
/// One round — the anchor-free solve that recovers the connectivity
/// ordering — is the default: on the flow netlists a second, anchored
/// round tightens legalized HPWL by only ~2% while costing ~40% more
/// seed time, and the refinement anneal recovers that gap anyway. The
/// anchored multi-round path stays available through
/// [`seed_assignment_with_rounds`] (and tested at 2 rounds) for
/// callers that want seed quality over speed.
pub const REWEIGHT_ROUNDS: usize = 1;

/// Conjugate-gradient iteration cap per axis per round. The seed only
/// needs rank order — legalization quantizes positions to slots — so
/// late-iteration precision is wasted: sweeping the cap on the
/// flow-bench netlists, legalized HPWL is flat from 15 to 40 and only
/// starts degrading below ~12, while each iteration costs ~5 vector
/// passes. Warm-started later rounds exit on [`CG_TOL`] well under the
/// cap anyway.
pub const CG_MAX_ITERS: usize = 15;

/// Relative-residual early exit for CG (`‖r‖ ≤ TOL·‖b‖`).
const CG_TOL: f64 = 1e-4;

/// Minimum pin separation (µm) in B2B weights, so coincident pins
/// don't produce unbounded edge weights.
const B2B_EPS: f64 = 0.5;

/// Weak pull toward the die center keeping the system positive-
/// definite for anchor-free connected components.
const CENTER_ANCHOR: f64 = 1e-6;

/// Per-round growth of the spreading-anchor strength, as a fraction of
/// each cell's own net-derived diagonal (round r ≥ 1 anchors at
/// `(r+1) · ANCHOR_BASE` toward the previous round's spread solution).
/// Round 0 runs anchor-free: starting from the ordered layout, any
/// anchor toward it just drags the solve back to the start, and the
/// rank-quantile spread recovers the scale afterwards anyway.
const ANCHOR_BASE: f64 = 0.1;

/// Weight of the x term in the legalizer's row-choice cost (the y term
/// has weight 1). Deliberately y-dominant: the x coordinate inside a
/// row is dictated by the append cursor, not the choice being scored,
/// so a full-weight x term pathologically attracts every cell to the
/// fullest row's frontier.
const LEGALIZE_X_WEIGHT: f64 = 0.05;

/// The legalized analytic seed handed to the annealer.
pub(crate) struct AnalyticSeed {
    /// Valid slot assignment per placeable-cell ordinal.
    pub(crate) slot_of: Vec<usize>,
    /// CG iterations spent (both axes, all reweight rounds).
    pub(crate) cg_iters: usize,
    /// Total µm the legalizer displaced cells from their solved
    /// positions.
    pub(crate) displacement: f64,
}

/// A standalone analytic placement result (bench/test API; the flow
/// itself goes through [`crate::place::place`], which embeds this
/// solve as the annealer seed).
#[derive(Debug, Clone)]
pub struct AnalyticPlacement {
    /// Legalized center per placeable cell, in placeable-ordinal
    /// order.
    pub positions: Vec<(f64, f64)>,
    /// HPWL of the legalized placement, µm.
    pub hpwl: f64,
    /// CG iterations spent (both axes, all reweight rounds).
    pub cg_iters: usize,
    /// Total µm of legalization displacement.
    pub displacement: f64,
}

/// Runs the analytic global placement (solve + legalization) for
/// `netlist` on `floorplan` without any annealing refinement.
///
/// # Errors
///
/// Returns [`PhysicalError::DoesNotFit`] when the rows offer fewer
/// slots than there are placeable cells.
pub fn analytic_place(
    tech: &Technology,
    netlist: &Netlist,
    floorplan: &Floorplan,
) -> Result<AnalyticPlacement, PhysicalError> {
    let problem = Problem::build(tech, netlist, floorplan, 0.0)?;
    let ctx = problem.ctx();
    if ctx.n_placeable < 2 {
        let slot_of: Vec<usize> = (0..ctx.n_placeable).collect();
        let positions = slot_of.iter().map(|&s| ctx.slots[s]).collect();
        let hpwl = assignment_hpwl(&ctx, &slot_of);
        return Ok(AnalyticPlacement {
            positions,
            hpwl,
            cg_iters: 0,
            displacement: 0.0,
        });
    }
    let seed = seed_assignment(&ctx);
    let positions = seed.slot_of.iter().map(|&s| ctx.slots[s]).collect();
    let hpwl = assignment_hpwl(&ctx, &seed.slot_of);
    Ok(AnalyticPlacement {
        positions,
        hpwl,
        cg_iters: seed.cg_iters,
        displacement: seed.displacement,
    })
}

/// Total HPWL of an assignment, summed in net order.
fn assignment_hpwl(ctx: &Ctx<'_>, slot_of: &[usize]) -> f64 {
    let mut total = 0.0;
    for net in 0..ctx.net_count() {
        let (s, e) = (ctx.net_off[net] as usize, ctx.net_off[net + 1] as usize);
        if e - s < 2 {
            continue;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &pin in &ctx.net_pins[s..e] {
            let (x, y) = ctx.pin_position(pin, slot_of);
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        total += (x1 - x0) + (y1 - y0);
    }
    total
}

/// Solves the B2B model with spreading and returns the best legalized
/// round. Requires `ctx.n_placeable ≥ 2`.
///
/// A pure quadratic solve collapses cells into a clump (the model is
/// happiest with everything coincident near its anchors), which
/// destroys the position information legalization needs. SimPL-style
/// spreading fixes that: each round's raw solution is spread over the
/// slot-coordinate distribution (rank → quantile) and the next round's
/// system pulls every cell toward its spread position with a
/// per-round-growing anchor weight, so the solve and the legal grid
/// converge toward each other. The first round is anchor-free — it
/// starts at the ordered layout, and anchoring toward the start just
/// reproduces it. The best legalized round by HPWL wins
/// (deterministic: strict improvement in round order).
pub(crate) fn seed_assignment(ctx: &Ctx<'_>) -> AnalyticSeed {
    seed_assignment_with_rounds(ctx, REWEIGHT_ROUNDS)
}

/// [`seed_assignment`] with an explicit reweighting-round count, for
/// callers trading seed time against seed quality (each round past the
/// first re-solves against spreading anchors at the previous round's
/// solution).
pub(crate) fn seed_assignment_with_rounds(ctx: &Ctx<'_>, rounds: usize) -> AnalyticSeed {
    let n = ctx.n_placeable;
    let mut x: Vec<f64> = (0..n).map(|i| ctx.slots[i].0).collect();
    let mut y: Vec<f64> = (0..n).map(|i| ctx.slots[i].1).collect();
    let mut sys_x = AxisSystem::new(n);
    let mut sys_y = AxisSystem::new(n);
    let mut scratch = PcgScratch::new(n);
    let mut anchor: Option<(Vec<f64>, Vec<f64>)> = None;
    let mut cg_iters = 0usize;
    // The ordered assignment (the linearization start) is the baseline
    // candidate: the seed never loses to the cold anneal's start.
    let ordered: Vec<usize> = (0..n).collect();
    let mut best = (ordered.clone(), assignment_hpwl(ctx, &ordered));
    let mut best_displacement = 0.0;
    // The slot-coordinate distribution the spreading maps onto is
    // round-invariant, so sort it once up front.
    let mut sorted_sx: Vec<f64> = ctx.slots.iter().map(|s| s.0).collect();
    sorted_sx.sort_unstable_by(f64::total_cmp);
    let mut sorted_sy: Vec<f64> = ctx.slots.iter().map(|s| s.1).collect();
    sorted_sy.sort_unstable_by(f64::total_cmp);
    for round in 0..rounds {
        let anchor_w = ANCHOR_BASE * (round + 1) as f64;
        cg_iters += solve_round(
            ctx,
            &mut x,
            &mut y,
            anchor
                .as_ref()
                .map(|(ax, ay)| (ax.as_slice(), ay.as_slice(), anchor_w)),
            &mut sys_x,
            &mut sys_y,
            &mut scratch,
        );
        // The raw solution clumps, so spread it over the slot
        // distribution (rank → quantile, per axis) before legalizing
        // and anchoring: relative order carries the connectivity
        // information, the quantile map restores the scale.
        let (sx, sy) = spread_targets(&x, &y, &sorted_sx, &sorted_sy);
        let (slot_of, displacement) = legalize(ctx, &sx, &sy);
        let hpwl = assignment_hpwl(ctx, &slot_of);
        anchor = Some((sx, sy));
        if hpwl < best.1 {
            best = (slot_of, hpwl);
            best_displacement = displacement;
        }
    }
    AnalyticSeed {
        slot_of: best.0,
        cg_iters,
        displacement: best_displacement,
    }
}

/// Rank-quantile spreading: cells keep their per-axis order from the
/// solve but take evenly spaced quantiles of the slot-coordinate
/// distribution (`sorted_sx`/`sorted_sy`, pre-sorted by the caller —
/// they never change between rounds), undoing the quadratic model's
/// clumping while preserving the connectivity-derived ordering.
fn spread_targets(
    x: &[f64],
    y: &[f64],
    sorted_sx: &[f64],
    sorted_sy: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    let n_slots = sorted_sx.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut tx = vec![0.0; n];
    let mut ty = vec![0.0; n];
    order.sort_unstable_by(|&a, &b| x[a].total_cmp(&x[b]).then(a.cmp(&b)));
    for (k, &ord) in order.iter().enumerate() {
        tx[ord] = sorted_sx[k * n_slots / n];
    }
    order.sort_unstable_by(|&a, &b| y[a].total_cmp(&y[b]).then(a.cmp(&b)));
    for (k, &ord) in order.iter().enumerate() {
        ty[ord] = sorted_sy[k * n_slots / n];
    }
    (tx, ty)
}

/// One axis's linear system: `(D - W + anchors) x = b`, stored as a
/// dense diagonal plus a movable-movable edge list (rebuilt every
/// reweight round, buffers reused).
struct AxisSystem {
    diag: Vec<f64>,
    rhs: Vec<f64>,
    /// Movable-movable edges `(i, j, w)`, `i != j`.
    edges: Vec<(u32, u32, f64)>,
}

impl AxisSystem {
    fn new(n: usize) -> Self {
        AxisSystem {
            diag: vec![0.0; n],
            rhs: vec![0.0; n],
            edges: Vec::new(),
        }
    }

    fn reset(&mut self, center: f64) {
        for d in &mut self.diag {
            *d = CENTER_ANCHOR;
        }
        for b in &mut self.rhs {
            *b = CENTER_ANCHOR * center;
        }
        self.edges.clear();
    }

    /// Adds one B2B edge between two pins: movable-movable edges go to
    /// the edge list, movable-fixed edges fold into diag/rhs, and
    /// fixed-fixed (or self-) edges are constants with no gradient.
    #[inline]
    fn add_edge(&mut self, a: Var, b: Var, w: f64) {
        match (a, b) {
            (Var::Movable(i), Var::Movable(j)) => {
                if i != j {
                    self.diag[i as usize] += w;
                    self.diag[j as usize] += w;
                    self.edges.push((i, j, w));
                }
            }
            (Var::Movable(i), Var::Fixed(f)) | (Var::Fixed(f), Var::Movable(i)) => {
                self.diag[i as usize] += w;
                self.rhs[i as usize] += w * f;
            }
            (Var::Fixed(_), Var::Fixed(_)) => {}
        }
    }

    /// `y = A x` with `A = diag(d) - W` (serial, fixed order).
    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        for (yi, (&d, &xi)) in y.iter_mut().zip(self.diag.iter().zip(x.iter())) {
            *yi = d * xi;
        }
        for &(i, j, w) in &self.edges {
            y[i as usize] -= w * x[j as usize];
            y[j as usize] -= w * x[i as usize];
        }
    }
}

/// One pin of a net as the solver sees it: a movable variable or a
/// fixed coordinate.
#[derive(Clone, Copy)]
enum Var {
    Movable(u32),
    Fixed(f64),
}

/// Jacobi-preconditioned CG on `sys`, warm-starting from `x`. Returns
/// the iterations spent. Strictly serial.
fn pcg(sys: &AxisSystem, x: &mut [f64], scratch: &mut PcgScratch) -> usize {
    let n = x.len();
    let PcgScratch { r, p, ap, .. } = scratch;
    sys.matvec(x, r);
    let mut bnorm2 = 0.0;
    for (ri, &bi) in r.iter_mut().zip(sys.rhs.iter()) {
        *ri = bi - *ri;
        bnorm2 += bi * bi;
    }
    let tol2 = CG_TOL * CG_TOL * bnorm2.max(f64::MIN_POSITIVE);
    // The residual norms (`rr` for the exit test, `rz` for beta) are
    // accumulated inside the vector-update loops rather than in
    // dedicated passes: in-order accumulation of the same terms, so
    // bit-identical results at two fewer length-n sweeps per iteration
    // — which matters, because with ~2k variables and only ~2k edges
    // the solve is pass-bound, not matvec-bound.
    let mut rz = 0.0;
    let mut rr = 0.0;
    for i in 0..n {
        let zi = r[i] / sys.diag[i];
        p[i] = zi;
        rz += r[i] * zi;
        rr += r[i] * r[i];
    }
    let mut iters = 0;
    for _ in 0..CG_MAX_ITERS {
        if rr <= tol2 {
            break;
        }
        iters += 1;
        sys.matvec(p, ap);
        let pap: f64 = p.iter().zip(ap.iter()).map(|(&a, &b)| a * b).sum();
        if pap <= 0.0 {
            break;
        }
        let alpha = rz / pap;
        let mut rz_new = 0.0;
        let mut rr_new = 0.0;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            let zi = r[i] / sys.diag[i];
            rz_new += r[i] * zi;
            rr_new += r[i] * r[i];
        }
        let beta = rz_new / rz;
        rz = rz_new;
        rr = rr_new;
        for i in 0..n {
            let zi = r[i] / sys.diag[i];
            p[i] = zi + beta * p[i];
        }
    }
    iters
}

struct PcgScratch {
    r: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    /// Per-net pin scratch: (axis coordinate, variable) pairs.
    pins_x: Vec<(f64, Var)>,
    pins_y: Vec<(f64, Var)>,
}

impl PcgScratch {
    fn new(n: usize) -> Self {
        PcgScratch {
            r: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
            pins_x: Vec::new(),
            pins_y: Vec::new(),
        }
    }
}

/// One reweight round: rebuilds both axes' B2B systems at the current
/// `(x, y)` (plus per-cell spreading anchors, when given) and solves
/// each with warm-started PCG. Returns the CG iterations spent.
#[allow(clippy::too_many_arguments)]
fn solve_round(
    ctx: &Ctx<'_>,
    x: &mut [f64],
    y: &mut [f64],
    anchors: Option<(&[f64], &[f64], f64)>,
    sys_x: &mut AxisSystem,
    sys_y: &mut AxisSystem,
    scratch: &mut PcgScratch,
) -> usize {
    sys_x.reset(ctx.die.0 / 2.0);
    sys_y.reset(ctx.die.1 / 2.0);
    for net in 0..ctx.net_count() {
        let (s, e) = (ctx.net_off[net] as usize, ctx.net_off[net + 1] as usize);
        let p = e - s;
        if p < 2 {
            continue;
        }
        scratch.pins_x.clear();
        scratch.pins_y.clear();
        for &pin in &ctx.net_pins[s..e] {
            match pin {
                PinRef::Cell(ord) => {
                    scratch.pins_x.push((x[ord], Var::Movable(ord as u32)));
                    scratch.pins_y.push((y[ord], Var::Movable(ord as u32)));
                }
                _ => {
                    let (px, py) = ctx.pin_position(pin, &[]);
                    scratch.pins_x.push((px, Var::Fixed(px)));
                    scratch.pins_y.push((py, Var::Fixed(py)));
                }
            }
        }
        b2b_net(&scratch.pins_x, sys_x);
        b2b_net(&scratch.pins_y, sys_y);
    }
    if let Some((ax, ay, alpha)) = anchors {
        if alpha > 0.0 {
            // Anchor weight scales with the cell's own net connectivity
            // (its diagonal), so the pull is a fixed *fraction* of the
            // net forces regardless of design size or net weights.
            for i in 0..ctx.n_placeable {
                let wx = alpha * sys_x.diag[i];
                sys_x.diag[i] += wx;
                sys_x.rhs[i] += wx * ax[i];
                let wy = alpha * sys_y.diag[i];
                sys_y.diag[i] += wy;
                sys_y.rhs[i] += wy * ay[i];
            }
        }
    }
    pcg(sys_x, x, scratch) + pcg(sys_y, y, scratch)
}

/// Adds one net's B2B edges for one axis: boundary pins (first min,
/// first max in scan order — deterministic tie-break) connect to every
/// other pin; the boundary-boundary edge is added once.
fn b2b_net(pins: &[(f64, Var)], sys: &mut AxisSystem) {
    let p = pins.len();
    let mut bmin = 0usize;
    let mut bmax = 0usize;
    for (k, &(c, _)) in pins.iter().enumerate().skip(1) {
        if c < pins[bmin].0 {
            bmin = k;
        }
        if c > pins[bmax].0 {
            bmax = k;
        }
    }
    if bmin == bmax {
        // All pins coincide on this axis; still connect through two
        // distinct boundary indices so the net stays one component.
        bmax = if bmin == 0 { 1 } else { 0 };
    }
    let scale = 2.0 / (p - 1) as f64;
    for (k, &(c, v)) in pins.iter().enumerate() {
        if k != bmin {
            let w = scale / (pins[bmin].0 - c).abs().max(B2B_EPS);
            sys.add_edge(pins[bmin].1, v, w);
        }
        if k != bmax && k != bmin {
            let w = scale / (pins[bmax].0 - c).abs().max(B2B_EPS);
            sys.add_edge(pins[bmax].1, v, w);
        }
    }
}

/// Tetris legalization: cells in ascending solved-x order each take
/// the cheapest per-row append slot. Returns the assignment and the
/// total displacement from the solved positions.
///
/// The row choice is an argmin of `0.05·|Δx| + |Δy|` over non-full
/// rows (ties broken toward the lower row index). Because the cost is
/// bounded below by the y distance alone, the scan walks rows outward
/// from the cell's solved y (over a y-sorted row order) and stops as
/// soon as that lower bound exceeds the best cost seen — identical
/// result to the full scan, but O(rows visited) is a small constant
/// for typical spread solutions instead of the whole row set.
pub(crate) fn legalize(ctx: &Ctx<'_>, x: &[f64], y: &[f64]) -> (Vec<usize>, f64) {
    let n_rows = ctx.row_off.len() - 1;
    let mut cursor: Vec<u32> = ctx.row_off[..n_rows].to_vec();
    // Every slot in a row shares the row's y; sort row indices by it.
    let row_y: Vec<f64> = (0..n_rows)
        .map(|r| ctx.slots[ctx.row_off[r] as usize].1)
        .collect();
    let mut by_y: Vec<usize> = (0..n_rows).collect();
    by_y.sort_unstable_by(|&a, &b| row_y[a].total_cmp(&row_y[b]).then(a.cmp(&b)));
    let mut order: Vec<usize> = (0..ctx.n_placeable).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]).then(a.cmp(&b)));
    let mut slot_of = vec![usize::MAX; ctx.n_placeable];
    let mut displacement = 0.0;
    for &ord in &order {
        let (cx, cy) = (x[ord], y[ord]);
        // Two-pointer outward walk from the first row at or above cy.
        let start = by_y.partition_point(|&r| row_y[r] < cy);
        let mut lo = start;
        let mut hi = start;
        // Winner by (cost, row index): the lexicographic min matches
        // the index-order scan's first-strict-improvement rule.
        let mut best = (f64::MAX, usize::MAX);
        loop {
            let dlo = if lo > 0 { cy - row_y[by_y[lo - 1]] } else { f64::MAX };
            let dhi = if hi < n_rows { row_y[by_y[hi]] - cy } else { f64::MAX };
            let (r, dy) = if dlo <= dhi {
                if lo == 0 {
                    break;
                }
                lo -= 1;
                (by_y[lo], dlo)
            } else {
                hi += 1;
                (by_y[hi - 1], dhi)
            };
            // cost ≥ |Δy| for every remaining candidate on both sides.
            if dy > best.0 {
                break;
            }
            let cur = cursor[r];
            if cur >= ctx.row_off[r + 1] {
                continue;
            }
            let (sx, sy) = ctx.slots[cur as usize];
            // Row choice is driven by y fit: every row's cursor sits at
            // roughly the same fill level, so the x term only breaks
            // ties (at full weight it would attract cells to whichever
            // row happens to be fullest).
            let cost = LEGALIZE_X_WEIGHT * (sx - cx).abs() + (sy - cy).abs();
            if (cost, r) < best {
                best = (cost, r);
            }
        }
        let best_row = best.1;
        debug_assert!(best_row != usize::MAX, "legalizer ran out of slots");
        let (sx, sy) = ctx.slots[cursor[best_row] as usize];
        slot_of[ord] = cursor[best_row] as usize;
        cursor[best_row] += 1;
        displacement += (sx - cx).abs() + (sy - cy).abs();
    }
    (slot_of, displacement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::FloorplanOptions;
    use lim_brick::BrickLibrary;
    use lim_rtl::generators::decoder;

    #[test]
    fn analytic_placement_is_valid_and_beats_ordered() {
        // Generated decoders are ordered near-optimally by
        // construction, so the solve legitimately falls back to the
        // ordered baseline there (asserted as ≤). The strict win is
        // asserted on a netlist built in scrambled order, where cell
        // indices carry no placement information and only the
        // connectivity-driven solve can recover locality.
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let a = analytic_place(&tech, &dec, &fp).unwrap();
        assert!(a.cg_iters > 0);
        assert!(a.hpwl > 0.0);
        let problem = Problem::build(&tech, &dec, &fp, 0.0).unwrap();
        let ctx = problem.ctx();
        let ordered: Vec<usize> = (0..ctx.n_placeable).collect();
        assert!(a.hpwl <= assignment_hpwl(&ctx, &ordered));

        // Random fanout-rich netlist (fixed seed): every gate draws its
        // inputs uniformly from all earlier nets, so the construction
        // order says nothing about which cells belong together.
        let mut rng = lim_testkit::TestRng::seed_from_u64(17);
        let kinds = [
            lim_rtl::StdCellKind::Inv,
            lim_rtl::StdCellKind::Nand2,
            lim_rtl::StdCellKind::Nor2,
            lim_rtl::StdCellKind::Xor2,
        ];
        let mut n = lim_rtl::Netlist::new("scrambled");
        let mut nets: Vec<lim_rtl::NetId> =
            (0..4).map(|i| n.add_input(format!("in{i}"))).collect();
        for g in 0..96 {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let ins: Vec<lim_rtl::NetId> = (0..kind.input_count())
                .map(|_| nets[rng.gen_range(0..nets.len())])
                .collect();
            nets.push(n.add_gate(kind, 1.0, &ins, format!("g{g}")).unwrap());
        }
        for &o in nets.iter().rev().take(3) {
            n.mark_output(o);
        }
        let fp = Floorplan::build(&tech, &n, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let a = analytic_place(&tech, &n, &fp).unwrap();
        let problem = Problem::build(&tech, &n, &fp, 0.0).unwrap();
        let ctx = problem.ctx();
        let ordered: Vec<usize> = (0..ctx.n_placeable).collect();
        let ordered_hpwl = assignment_hpwl(&ctx, &ordered);
        assert!(
            a.hpwl < ordered_hpwl,
            "analytic {} vs scrambled-ordered {ordered_hpwl}",
            a.hpwl
        );
    }

    #[test]
    fn anchored_multi_round_path_is_valid_and_deterministic() {
        // The default seed runs a single anchor-free round; this pins
        // the anchored reweighting path (round ≥ 1 re-solves against
        // spreading anchors at the previous round's spread solution):
        // still a valid slot injection, still byte-deterministic, and
        // never worse than the ordered baseline (the best-round-wins
        // rule keeps extra rounds monotone in candidate quality).
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let problem = Problem::build(&tech, &dec, &fp, 0.0).unwrap();
        let ctx = problem.ctx();
        let a = seed_assignment_with_rounds(&ctx, 2);
        let b = seed_assignment_with_rounds(&ctx, 2);
        assert_eq!(a.slot_of, b.slot_of);
        assert_eq!(a.cg_iters, b.cg_iters);
        // Two rounds solve strictly more than one.
        let single = seed_assignment_with_rounds(&ctx, 1);
        assert!(a.cg_iters > single.cg_iters);
        let mut seen = vec![false; ctx.slots.len()];
        for (ord, &s) in a.slot_of.iter().enumerate() {
            assert!(s < ctx.slots.len(), "ordinal {ord} got out-of-range slot");
            assert!(!seen[s], "slot {s} assigned twice");
            seen[s] = true;
        }
        let ordered: Vec<usize> = (0..ctx.n_placeable).collect();
        let two_round_hpwl = assignment_hpwl(&ctx, &a.slot_of);
        assert!(two_round_hpwl <= assignment_hpwl(&ctx, &ordered));
        // Round 0 is identical in both runs, so the two-round winner
        // draws from a superset of candidates: never worse.
        assert!(two_round_hpwl <= assignment_hpwl(&ctx, &single.slot_of));
    }

    #[test]
    fn analytic_placement_is_deterministic() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 4, 16, false).unwrap();
        let fp = Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let a = analytic_place(&tech, &dec, &fp).unwrap();
        let b = analytic_place(&tech, &dec, &fp).unwrap();
        assert_eq!(a.cg_iters, b.cg_iters);
        assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
        for (pa, pb) in a.positions.iter().zip(b.positions.iter()) {
            assert_eq!(pa.0.to_bits(), pb.0.to_bits());
            assert_eq!(pa.1.to_bits(), pb.1.to_bits());
        }
    }

    #[test]
    fn legalizer_emits_valid_slot_injection_on_random_designs() {
        // Property: for any netlist/floorplan and any (even adversarial)
        // solved coordinates, legalization assigns every placeable cell
        // a distinct in-range slot.
        let tech = Technology::cmos65();
        lim_testkit::prop::check("legalizer_emits_valid_slot_injection", |rng| {
            let kinds = [
                lim_rtl::StdCellKind::Inv,
                lim_rtl::StdCellKind::Nand2,
                lim_rtl::StdCellKind::Nor2,
                lim_rtl::StdCellKind::And2,
                lim_rtl::StdCellKind::Xor2,
            ];
            let mut n = lim_rtl::Netlist::new("fuzz");
            let n_inputs = rng.gen_range(2usize..6);
            let mut nets: Vec<lim_rtl::NetId> = (0..n_inputs)
                .map(|i| n.add_input(format!("in{i}")))
                .collect();
            for g in 0..rng.gen_range(2usize..80) {
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let ins: Vec<lim_rtl::NetId> = (0..kind.input_count())
                    .map(|_| nets[rng.gen_range(0..nets.len())])
                    .collect();
                nets.push(n.add_gate(kind, 1.0, &ins, format!("g{g}")).unwrap());
            }
            for &o in nets.iter().rev().take(3) {
                n.mark_output(o);
            }
            let fp =
                Floorplan::build(&tech, &n, &BrickLibrary::new(), &FloorplanOptions::default())
                    .unwrap();
            let problem = Problem::build(&tech, &n, &fp, 0.0).unwrap();
            let ctx = problem.ctx();
            // Adversarial solved positions: arbitrary reals, including
            // clumps far outside the die.
            let xs: Vec<f64> = (0..ctx.n_placeable)
                .map(|_| rng.gen_range(-50.0f64..500.0))
                .collect();
            let ys: Vec<f64> = (0..ctx.n_placeable)
                .map(|_| rng.gen_range(-50.0f64..500.0))
                .collect();
            let (slot_of, displacement) = legalize(&ctx, &xs, &ys);
            assert!(displacement >= 0.0);
            let mut seen = vec![false; ctx.slots.len()];
            for (ord, &s) in slot_of.iter().enumerate() {
                assert!(s < ctx.slots.len(), "ordinal {ord} got out-of-range slot");
                assert!(!seen[s], "slot {s} assigned twice");
                seen[s] = true;
            }
        });
    }

    #[test]
    fn trivial_design_skips_solve() {
        let tech = Technology::cmos65();
        let mut n = lim_rtl::Netlist::new("one");
        let a = n.add_input("a");
        let out = n
            .add_gate(lim_rtl::StdCellKind::Inv, 1.0, &[a], "y")
            .unwrap();
        n.mark_output(out);
        let fp = Floorplan::build(&tech, &n, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let p = analytic_place(&tech, &n, &fp).unwrap();
        assert_eq!(p.cg_iters, 0);
        assert_eq!(p.positions.len(), 1);
    }
}
