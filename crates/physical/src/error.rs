//! Error type for the physical synthesis flow.

use std::error::Error;
use std::fmt;

/// Errors raised by floorplanning, placement, timing or power analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalError {
    /// The netlist failed validation.
    Rtl(lim_rtl::RtlError),
    /// A macro instance references a brick-library entry that is missing.
    Brick(lim_brick::BrickError),
    /// The die cannot fit the requested content at the given utilization.
    DoesNotFit {
        /// Area demanded, µm².
        demand: f64,
        /// Area available, µm².
        capacity: f64,
    },
    /// Timing analysis found no clocked endpoint to constrain.
    NoEndpoints,
    /// A flow option was out of range.
    BadOption {
        /// Option name.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
}

impl fmt::Display for PhysicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalError::Rtl(e) => write!(f, "netlist error: {e}"),
            PhysicalError::Brick(e) => write!(f, "brick library error: {e}"),
            PhysicalError::DoesNotFit { demand, capacity } => {
                write!(f, "design needs {demand:.0} µm² but die offers {capacity:.0} µm²")
            }
            PhysicalError::NoEndpoints => write!(f, "no clocked endpoints to constrain timing"),
            PhysicalError::BadOption { name, value } => {
                write!(f, "flow option `{name}` out of range: {value}")
            }
        }
    }
}

impl Error for PhysicalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PhysicalError::Rtl(e) => Some(e),
            PhysicalError::Brick(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lim_rtl::RtlError> for PhysicalError {
    fn from(e: lim_rtl::RtlError) -> Self {
        PhysicalError::Rtl(e)
    }
}

impl From<lim_brick::BrickError> for PhysicalError {
    fn from(e: lim_brick::BrickError) -> Self {
        PhysicalError::Brick(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PhysicalError::DoesNotFit {
            demand: 100.0,
            capacity: 50.0,
        };
        assert!(e.to_string().contains("100"));
        let wrapped = PhysicalError::from(lim_rtl::RtlError::UnknownNet(3));
        assert!(wrapped.source().is_some());
    }
}
