//! Global-routing wire estimation (the `.spef` of the flow).
//!
//! Each net's length is its half-perimeter wirelength scaled by a
//! Steiner-tree correction for multi-pin nets; RC parasitics follow from
//! the technology wire constants, and sink pin capacitances come from the
//! standard-cell and brick libraries.

use crate::floorplan::Floorplan;
use crate::place::{hpwl, Placement};
use lim_brick::BrickLibrary;
use lim_rtl::{CellKind, NetId, Netlist};
use lim_tech::units::{Femtofarads, KiloOhms, Microns};
use lim_tech::Technology;

/// Wire and load estimate for one net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetRoute {
    /// Estimated routed length.
    pub length: Microns,
    /// Wire capacitance.
    pub wire_cap: Femtofarads,
    /// Wire resistance.
    pub wire_res: KiloOhms,
    /// Total sink pin capacitance.
    pub pin_cap: Femtofarads,
}

impl NetRoute {
    /// Total load a driver of this net sees.
    pub fn total_cap(&self) -> Femtofarads {
        self.wire_cap + self.pin_cap
    }
}

/// Steiner correction: HPWL is exact for 2–3 pins; larger nets grow.
fn steiner_factor(pins: usize) -> f64 {
    if pins <= 3 {
        1.0
    } else {
        1.0 + 0.18 * ((pins - 3) as f64).sqrt()
    }
}

/// Pin positions of every net, built in one pass over the netlist and
/// stored flat (CSR), so per-net queries are slice lookups instead of
/// fresh allocations and full-netlist rescans.
///
/// Matches [`net_pin_positions`] pin for pin: one pin per (cell, net)
/// incidence regardless of how many cell pins the net drives, cells
/// without a resolvable position skipped, port pins appended last.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPinIndex {
    offsets: Vec<usize>,
    pos: Vec<(f64, f64)>,
}

impl NetPinIndex {
    /// Builds the index for `netlist` under `placement`.
    pub fn build(netlist: &Netlist, placement: &Placement, floorplan: &Floorplan) -> Self {
        let n_nets = netlist.net_count();
        let cells = netlist.cells();

        // Resolve each cell's position once: placed std cells by their
        // slot, macros by the placement's (or floorplan's) center.
        let cell_pos: Vec<Option<(f64, f64)>> = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                placement.cell_pos[i]
                    .or_else(|| {
                        placement
                            .macro_centers
                            .iter()
                            .find(|(name, _)| name == &cell.name)
                            .map(|(_, p)| *p)
                    })
                    .or_else(|| {
                        floorplan
                            .macros
                            .iter()
                            .find(|m| m.instance == cell.name)
                            .map(|m| {
                                let (x, y) = m.center();
                                (x.value(), y.value())
                            })
                    })
            })
            .collect();

        // Count pass. `seen` stamps deduplicate nets within one cell
        // (a net on both an input and an output pin counts once).
        let mut count = vec![0usize; n_nets];
        let mut seen = vec![u32::MAX; n_nets];
        for (i, cell) in cells.iter().enumerate() {
            if cell_pos[i].is_none() {
                continue;
            }
            for &net in cell.inputs.iter().chain(cell.outputs.iter()) {
                if seen[net.index()] != i as u32 {
                    seen[net.index()] = i as u32;
                    count[net.index()] += 1;
                }
            }
        }
        for (net, _) in &placement.input_pins {
            count[net.index()] += 1;
        }
        for (net, _) in &placement.output_pins {
            count[net.index()] += 1;
        }

        let mut offsets = vec![0usize; n_nets + 1];
        for n in 0..n_nets {
            offsets[n + 1] = offsets[n] + count[n];
        }
        let mut cursor = offsets[..n_nets].to_vec();
        let mut pos = vec![(0.0, 0.0); offsets[n_nets]];

        // Fill pass, same order as the count: cells first, then ports.
        seen.fill(u32::MAX);
        for (i, cell) in cells.iter().enumerate() {
            let Some(p) = cell_pos[i] else { continue };
            for &net in cell.inputs.iter().chain(cell.outputs.iter()) {
                if seen[net.index()] != i as u32 {
                    seen[net.index()] = i as u32;
                    pos[cursor[net.index()]] = p;
                    cursor[net.index()] += 1;
                }
            }
        }
        for (net, p) in &placement.input_pins {
            pos[cursor[net.index()]] = *p;
            cursor[net.index()] += 1;
        }
        for (net, p) in &placement.output_pins {
            pos[cursor[net.index()]] = *p;
            cursor[net.index()] += 1;
        }
        NetPinIndex { offsets, pos }
    }

    /// Pin positions of one net.
    pub fn pins(&self, net: NetId) -> &[(f64, f64)] {
        &self.pos[self.offsets[net.index()]..self.offsets[net.index() + 1]]
    }
}

/// Estimates every net of the design. Indexed by net index.
///
/// # Errors
///
/// Propagates missing brick-library entries.
pub fn estimate(
    tech: &Technology,
    netlist: &Netlist,
    placement: &Placement,
    floorplan: &Floorplan,
    library: &BrickLibrary,
) -> Result<Vec<NetRoute>, crate::PhysicalError> {
    let mut routes = Vec::with_capacity(netlist.net_count());
    // Pin cap contributions per net.
    let mut pin_caps = vec![0.0f64; netlist.net_count()];
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Gate { kind, drive } => {
                for &input in &cell.inputs {
                    pin_caps[input.index()] += kind.input_cap(tech, *drive).value();
                }
                if kind.is_sequential() {
                    if let Some(clk) = netlist.clock() {
                        pin_caps[clk.index()] += kind.clock_cap(tech, *drive).value();
                    }
                }
            }
            CellKind::Macro { lib_name } => {
                let entry = library.get(lib_name)?;
                for &input in &cell.inputs {
                    if Some(input) == netlist.clock() {
                        pin_caps[input.index()] += entry.clk_pin_cap.value();
                    } else {
                        pin_caps[input.index()] += entry.dwl_pin_cap.value();
                    }
                }
            }
            CellKind::Tie { .. } => {}
        }
    }

    let index = NetPinIndex::build(netlist, placement, floorplan);
    for (n, &pin_cap) in pin_caps.iter().enumerate() {
        let pins = index.pins(NetId::from_index(n));
        let length = Microns::new(hpwl(pins).value() * steiner_factor(pins.len()));
        routes.push(NetRoute {
            length,
            wire_cap: Femtofarads::new(tech.wire_c_per_um.value() * length.value()),
            wire_res: KiloOhms::new(tech.wire_r_per_um.value() * length.value()),
            pin_cap: Femtofarads::new(pin_cap),
        });
    }
    lim_obs::counter_add("route.nets", routes.len() as u64);
    Ok(routes)
}

/// Total routed wirelength.
pub fn total_wirelength(routes: &[NetRoute]) -> Microns {
    Microns::new(routes.iter().map(|r| r.length.value()).sum())
}

/// A coarse congestion map: routed demand per grid tile versus the
/// tile's track supply.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    tiles_x: usize,
    tiles_y: usize,
    /// Demand in µm of wire per tile.
    demand: Vec<f64>,
    /// Routing supply per tile, µm of track.
    supply_per_tile: f64,
}

impl CongestionMap {
    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.tiles_x, self.tiles_y)
    }

    /// Utilization of one tile (demand / supply).
    pub fn utilization(&self, x: usize, y: usize) -> f64 {
        self.demand[y * self.tiles_x + x] / self.supply_per_tile
    }

    /// The most congested tile's utilization.
    pub fn peak_utilization(&self) -> f64 {
        self.demand
            .iter()
            .fold(0.0f64, |m, &d| m.max(d / self.supply_per_tile))
    }

    /// Fraction of tiles above 100 % utilization (overflow).
    pub fn overflow_fraction(&self) -> f64 {
        if self.demand.is_empty() {
            return 0.0;
        }
        self.demand
            .iter()
            .filter(|&&d| d > self.supply_per_tile)
            .count() as f64
            / self.demand.len() as f64
    }
}

/// Builds the congestion map by spreading each net's wirelength uniformly
/// over the tiles its bounding box covers.
pub fn congestion(
    netlist: &Netlist,
    placement: &crate::place::Placement,
    floorplan: &Floorplan,
    routes: &[NetRoute],
    tile_um: f64,
) -> CongestionMap {
    let tiles_x = (floorplan.width.value() / tile_um).ceil().max(1.0) as usize;
    let tiles_y = (floorplan.height.value() / tile_um).ceil().max(1.0) as usize;
    let mut demand = vec![0.0f64; tiles_x * tiles_y];
    // Supply: ~1 track per 0.2 µm pitch on each of 2 layers across the
    // tile, i.e. tile_um/0.2 tracks × tile_um length × 2.
    let supply_per_tile = (tile_um / 0.2) * tile_um * 2.0;

    let index = NetPinIndex::build(netlist, placement, floorplan);
    for (n, route) in routes.iter().enumerate() {
        let pins = index.pins(NetId::from_index(n));
        if pins.len() < 2 {
            continue;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in pins {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        let tx0 = ((x0 / tile_um) as usize).min(tiles_x - 1);
        let tx1 = ((x1 / tile_um) as usize).min(tiles_x - 1);
        let ty0 = ((y0 / tile_um) as usize).min(tiles_y - 1);
        let ty1 = ((y1 / tile_um) as usize).min(tiles_y - 1);
        let n_tiles = ((tx1 - tx0 + 1) * (ty1 - ty0 + 1)) as f64;
        let per_tile = route.length.value() / n_tiles;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                demand[ty * tiles_x + tx] += per_tile;
            }
        }
    }
    CongestionMap {
        tiles_x,
        tiles_y,
        demand,
        supply_per_tile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::FloorplanOptions;
    use crate::place::{place, PlaceEffort};
    use lim_rtl::generators::decoder;

    #[test]
    fn routes_cover_every_net() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 4, 16, true).unwrap();
        let lib = BrickLibrary::new();
        let fp = Floorplan::build(&tech, &dec, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &dec, &fp, 1, PlaceEffort::default()).unwrap();
        let routes = estimate(&tech, &dec, &pl, &fp, &lib).unwrap();
        assert_eq!(routes.len(), dec.net_count());
        assert!(total_wirelength(&routes).value() > 0.0);
        // Loaded nets have pin cap; every driven net with sinks has load.
        let fanout = dec.fanout_map();
        for (i, r) in routes.iter().enumerate() {
            if !fanout[i].is_empty() {
                assert!(r.pin_cap.value() > 0.0, "net {i} has sinks but no pin cap");
            }
        }
    }

    #[test]
    fn pin_index_matches_per_net_scan() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let lib = BrickLibrary::new();
        let fp = Floorplan::build(&tech, &dec, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &dec, &fp, 3, PlaceEffort::default()).unwrap();
        let index = NetPinIndex::build(&dec, &pl, &fp);
        for n in 0..dec.net_count() {
            let net = NetId::from_index(n);
            let scanned = crate::place::net_pin_positions(&dec, &pl, &fp, net);
            assert_eq!(index.pins(net), scanned.as_slice(), "net {n}");
        }
    }

    #[test]
    fn steiner_grows_with_pins() {
        assert_eq!(steiner_factor(2), 1.0);
        assert_eq!(steiner_factor(3), 1.0);
        assert!(steiner_factor(10) > steiner_factor(4));
    }

    #[test]
    fn congestion_map_sane() {
        let tech = Technology::cmos65();
        let dec = decoder("dec", 5, 32, true).unwrap();
        let lib = BrickLibrary::new();
        let fp = Floorplan::build(&tech, &dec, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &dec, &fp, 2, PlaceEffort::default()).unwrap();
        let routes = estimate(&tech, &dec, &pl, &fp, &lib).unwrap();
        let map = congestion(&dec, &pl, &fp, &routes, 10.0);
        let (tx, ty) = map.dims();
        assert!(tx >= 1 && ty >= 1);
        assert!(map.peak_utilization() > 0.0);
        // A small decoder should route cleanly.
        assert!(
            map.overflow_fraction() < 0.25,
            "overflow {}",
            map.overflow_fraction()
        );
        // Total demand conserved: sum over tiles = total wirelength of
        // multi-pin nets.
        let fanout = dec.fanout_map();
        let ml_total: f64 = (0..dec.net_count())
            .filter(|&i| {
                let pins = fanout[i].len()
                    + dec.primary_inputs().iter().filter(|&&n| n.index() == i).count()
                    + dec.primary_outputs().iter().filter(|&&n| n.index() == i).count()
                    + 1;
                pins >= 2
            })
            .map(|i| routes[i].length.value())
            .sum();
        let mapped: f64 = (0..ty)
            .flat_map(|y| (0..tx).map(move |x| (x, y)))
            .map(|(x, y)| map.utilization(x, y) * (10.0 / 0.2) * 10.0 * 2.0)
            .sum();
        // Driverless/singleton nets may differ slightly; allow 20 %.
        assert!(
            (mapped - ml_total).abs() / ml_total.max(1.0) < 0.2,
            "mapped {mapped} vs total {ml_total}"
        );
    }
}
