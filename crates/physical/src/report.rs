//! Human-readable report formatting (the `report_timing` /
//! `report_power` of the flow).

use crate::flow::BlockReport;
use std::fmt::Write as _;

/// Formats the block report as a classic sign-off summary.
pub fn block_summary(report: &BlockReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "==== Block report: {} ====", report.name);
    let _ = writeln!(s, "Timing");
    let _ = writeln!(s, "  min period     : {:.1}", report.min_period);
    let _ = writeln!(
        s,
        "  fmax           : {:.3} GHz",
        report.fmax.to_gigahertz().value()
    );
    let _ = writeln!(s, "  worst endpoint : {}", report.timing.worst_endpoint);
    if let Some(hold) = report.timing.worst_hold_slack {
        let _ = writeln!(
            s,
            "  hold slack     : {:.1} ({})",
            hold,
            if hold.value() >= 0.0 { "MET" } else { "VIOLATED" }
        );
    }
    let _ = writeln!(s, "  critical path  :");
    for (i, stage) in report.timing.critical_path.iter().enumerate() {
        let _ = writeln!(s, "    {i:>2}. {stage}");
    }
    let _ = writeln!(s, "Area");
    let _ = writeln!(s, "  die            : {:.1}", report.die_area);
    let _ = writeln!(s, "  macros         : {:.1}", report.macro_area);
    let _ = writeln!(s, "  std cells      : {:.1}", report.stdcell_area);
    if report.guard_area.value() > 0.0 {
        let _ = writeln!(s, "  litho guards   : {:.1}", report.guard_area);
    }
    let _ = writeln!(s, "  wirelength     : {:.1}", report.wirelength);
    let _ = writeln!(s, "Power @ fmax");
    let _ = writeln!(s, "  logic          : {:.3}", report.power.logic_dynamic);
    let _ = writeln!(s, "  clock          : {:.3}", report.power.clock);
    let _ = writeln!(s, "  macros         : {:.3}", report.power.macros);
    let _ = writeln!(s, "  leakage        : {:.3}", report.power.leakage);
    let _ = writeln!(s, "  total          : {:.3}", report.power.total());
    let _ = writeln!(
        s,
        "  energy/cycle   : {:.1} fJ",
        report.energy_per_cycle.value()
    );
    if let Some(ct) = &report.clock_tree {
        let _ = writeln!(s, "Clock tree");
        let _ = writeln!(
            s,
            "  {} sinks, {} buffers, {} levels",
            ct.sinks, ct.buffers, ct.levels
        );
        let _ = writeln!(
            s,
            "  insertion {:.1}, skew {:.1}",
            ct.insertion_delay, ct.skew
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowOptions, PhysicalSynthesis};
    use lim_brick::BrickLibrary;
    use lim_rtl::generators::register;
    use lim_tech::Technology;

    #[test]
    fn summary_contains_all_sections() {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let reg = register("regs", 8).unwrap();
        let report = PhysicalSynthesis::new(&tech, &lib)
            .run(&reg, &FlowOptions::default())
            .unwrap();
        let text = block_summary(&report);
        for needle in [
            "Block report: regs",
            "min period",
            "fmax",
            "critical path",
            "die",
            "wirelength",
            "energy/cycle",
            "Clock tree",
            "hold slack",
            "MET",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn combinational_summary_skips_sequential_sections() {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let dec = lim_rtl::generators::decoder("dec", 3, 8, false).unwrap();
        let report = PhysicalSynthesis::new(&tech, &lib)
            .run(&dec, &FlowOptions::default())
            .unwrap();
        let text = block_summary(&report);
        assert!(!text.contains("Clock tree"));
        assert!(!text.contains("hold slack"));
    }
}
