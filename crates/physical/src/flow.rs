//! The one-call physical synthesis pipeline.
//!
//! Floorplan → place → route → STA → power, producing a [`BlockReport`]
//! with the quantities the paper's figures plot: maximum frequency,
//! energy per operation, and area.

use crate::clock::{self, ClockTreeReport};
use crate::error::PhysicalError;
use crate::floorplan::{Floorplan, FloorplanOptions};
use crate::place::{place, PlaceEffort, Placement};
use crate::power::{self, MacroActivity, PowerReport};
use crate::route::{self, NetRoute};
use crate::sta::{self, TimingReport};
use lim_brick::BrickLibrary;
use lim_rtl::{Netlist, SwitchingActivity};
use lim_tech::units::{Femtojoules, Megahertz, Microns, Picoseconds, SquareMicrons};
use lim_tech::Technology;
use std::time::Duration;

/// Options controlling one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOptions {
    /// Floorplanning knobs.
    pub floorplan: FloorplanOptions,
    /// Placement seed (deterministic for a given seed).
    pub seed: u64,
    /// Placement effort.
    pub effort: PlaceEffort,
    /// Input pin slew assumption.
    pub input_slew: Picoseconds,
    /// Switching activity; `None` uses a uniform default profile.
    pub activity: Option<SwitchingActivity>,
    /// Uniform toggle rate when no activity is given.
    pub default_toggle_rate: f64,
    /// Macro access rates for power.
    pub macro_activity: MacroActivity,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            floorplan: FloorplanOptions::default(),
            seed: 1,
            effort: PlaceEffort::default(),
            input_slew: Picoseconds::new(20.0),
            activity: None,
            default_toggle_rate: 0.15,
            macro_activity: MacroActivity::default(),
        }
    }
}

/// Per-stage wall-clock timings and effort counters for one flow run.
///
/// Durations are always measured (one `Instant` pair per stage), so
/// they are valid whether or not `lim-obs` collection is enabled; when
/// it is, the same stages also appear as spans named `floorplan`,
/// `place`, `route`, `sta`, `clock_tree` and `power` under `physical`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Time in [`Floorplan::build`].
    pub floorplan: Duration,
    /// Time in placement annealing.
    pub place: Duration,
    /// Time in route estimation.
    pub route: Duration,
    /// Time in static timing analysis.
    pub sta: Duration,
    /// Time in clock-tree synthesis.
    pub clock_tree: Duration,
    /// Time in power analysis.
    pub power: Duration,
    /// Annealing moves the placer actually evaluated (zero when the
    /// design had nothing to anneal).
    pub place_moves: usize,
    /// Annealing moves the placer accepted.
    pub place_accepted: usize,
    /// Independent annealing starts the placer ran.
    pub place_starts: usize,
    /// Whether the annealer started from the analytic B2B seed (false
    /// under `SeedMode::Cold` or for degenerate designs).
    pub place_seeded: bool,
    /// Conjugate-gradient iterations the analytic seed spent (both
    /// axes, all reweight rounds; zero when unseeded).
    pub place_analytic_iters: usize,
    /// Legalization displacement of the analytic seed, rounded to whole
    /// µm (integer so `FlowStats` stays `Eq`; zero when unseeded).
    pub place_legalize_displacement_um: u64,
    /// Nets the router estimated.
    pub nets_routed: usize,
    /// Timing endpoints STA evaluated.
    pub sta_endpoints: usize,
}

impl FlowStats {
    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.floorplan + self.place + self.route + self.sta + self.clock_tree + self.power
    }
}

/// Complete result of physically synthesizing one block.
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Design name.
    pub name: String,
    /// Maximum clock frequency.
    pub fmax: Megahertz,
    /// Minimum clock period.
    pub min_period: Picoseconds,
    /// Die area including macros and rows.
    pub die_area: SquareMicrons,
    /// Area of brick macros alone.
    pub macro_area: SquareMicrons,
    /// Standard-cell area.
    pub stdcell_area: SquareMicrons,
    /// Guard area charged for pattern incompatibility (non-LiM flows).
    pub guard_area: SquareMicrons,
    /// Total routed wirelength.
    pub wirelength: Microns,
    /// Dynamic + leakage power at fmax.
    pub power: PowerReport,
    /// Dynamic energy per clock cycle.
    pub energy_per_cycle: Femtojoules,
    /// Timing details.
    pub timing: TimingReport,
    /// Clock-tree estimate (`None` for purely combinational designs).
    pub clock_tree: Option<ClockTreeReport>,
    /// Per-stage timings and effort counters.
    pub stats: FlowStats,
}

/// The physical synthesis engine.
#[derive(Debug, Clone)]
pub struct PhysicalSynthesis<'a> {
    tech: &'a Technology,
    library: &'a BrickLibrary,
}

impl<'a> PhysicalSynthesis<'a> {
    /// Creates a flow over a technology and a brick library.
    pub fn new(tech: &'a Technology, library: &'a BrickLibrary) -> Self {
        PhysicalSynthesis { tech, library }
    }

    /// Runs the full pipeline on `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure (floorplan fit, validation, missing
    /// library entries, timing without endpoints).
    pub fn run(&self, netlist: &Netlist, options: &FlowOptions) -> Result<BlockReport, PhysicalError> {
        let _span = lim_obs::Span::enter("physical");
        lim_obs::counter_add("flow.blocks", 1);
        let mut stats = FlowStats::default();
        let (fp, placement, routes, timing) = self.stages(netlist, options, &mut stats)?;

        // Clock-tree synthesis: refine the clock load for power and fold
        // insertion skew into the reported period margin.
        let (clock_tree, elapsed) = lim_obs::timed("clock_tree", || {
            clock::build(self.tech, netlist, &placement, &fp, self.library)
        });
        stats.clock_tree = elapsed;
        let clock_tree = clock_tree?;
        let clock_cap = clock_tree.as_ref().map(|ct| {
            let fallback = netlist
                .clock()
                .map(|c| routes[c.index()])
                .unwrap_or(routes[0]);
            clock::clock_cap_for_power(ct, &fallback)
        });

        let activity = options.activity.clone().unwrap_or_else(|| {
            SwitchingActivity::uniform(netlist.net_count(), options.default_toggle_rate, 100)
        });
        let (power, elapsed) = lim_obs::timed("power", || {
            power::analyze(
                self.tech,
                netlist,
                &routes,
                &activity,
                self.library,
                timing.fmax,
                &options.macro_activity,
                clock_cap,
            )
        });
        stats.power = elapsed;
        let power = power?;

        Ok(BlockReport {
            name: netlist.name().to_owned(),
            fmax: timing.fmax,
            min_period: timing.min_period,
            die_area: fp.die_area(),
            macro_area: fp.macro_area(),
            stdcell_area: netlist.stdcell_area(self.tech),
            guard_area: fp.guard_area,
            wirelength: route::total_wirelength(&routes),
            energy_per_cycle: power.energy_per_cycle,
            power,
            timing,
            clock_tree,
            stats,
        })
    }

    /// Runs floorplan → place → route → STA, exposing the intermediates
    /// (C-INTERMEDIATE: callers like the DSE engine reuse them).
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn run_to_timing(
        &self,
        netlist: &Netlist,
        options: &FlowOptions,
    ) -> Result<(Floorplan, Placement, Vec<NetRoute>, TimingReport), PhysicalError> {
        self.stages(netlist, options, &mut FlowStats::default())
    }

    /// Floorplan → place → route → STA, timing each stage into `stats`.
    fn stages(
        &self,
        netlist: &Netlist,
        options: &FlowOptions,
        stats: &mut FlowStats,
    ) -> Result<(Floorplan, Placement, Vec<NetRoute>, TimingReport), PhysicalError> {
        let (fp, elapsed) = lim_obs::timed("floorplan", || {
            Floorplan::build(self.tech, netlist, self.library, &options.floorplan)
        });
        stats.floorplan = elapsed;
        let fp = fp?;

        let (placement, elapsed) = lim_obs::timed("place", || {
            place(self.tech, netlist, &fp, options.seed, options.effort)
        });
        stats.place = elapsed;
        let placement = placement?;
        stats.place_moves = placement.moves;
        stats.place_accepted = placement.accepted;
        stats.place_starts = placement.starts;
        stats.place_seeded = placement.seeded;
        stats.place_analytic_iters = placement.analytic_iters;
        stats.place_legalize_displacement_um = placement.legalize_displacement.round() as u64;

        let (routes, elapsed) = lim_obs::timed("route", || {
            route::estimate(self.tech, netlist, &placement, &fp, self.library)
        });
        stats.route = elapsed;
        let routes = routes?;
        stats.nets_routed = routes.len();

        let (timing, elapsed) = lim_obs::timed("sta", || {
            sta::analyze(self.tech, netlist, &routes, self.library, options.input_slew)
        });
        stats.sta = elapsed;
        let timing = timing?;
        stats.sta_endpoints = timing.endpoints;

        Ok((fp, placement, routes, timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_brick::{BitcellKind, BrickSpec};
    use lim_rtl::generators::{array_multiplier, decoder};

    #[test]
    fn decoder_end_to_end() {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let dec = decoder("dec5to32", 5, 32, true).unwrap();
        let rep = PhysicalSynthesis::new(&tech, &lib)
            .run(&dec, &FlowOptions::default())
            .unwrap();
        assert!(rep.fmax.value() > 100.0, "fmax {}", rep.fmax);
        assert!(rep.die_area.value() > 0.0);
        assert!(rep.power.total().value() > 0.0);
        assert!(rep.wirelength.value() > 0.0);
        assert_eq!(rep.guard_area.value(), 0.0);
        // Stage stats are populated regardless of the obs enable flag.
        assert!(rep.stats.place_moves > 0);
        assert!(rep.stats.place_accepted <= rep.stats.place_moves);
        assert_eq!(rep.stats.place_starts, 1);
        assert!(rep.stats.place_seeded);
        assert!(rep.stats.place_analytic_iters > 0);
        assert!(rep.stats.nets_routed > 0);
        assert!(rep.stats.sta_endpoints > 0);
        assert_eq!(rep.stats.sta_endpoints, rep.timing.endpoints);
        assert!(rep.stats.total() > Duration::ZERO);
    }

    #[test]
    fn multiplier_slower_than_decoder() {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let opts = FlowOptions::default();
        let flow = PhysicalSynthesis::new(&tech, &lib);
        let dec = flow
            .run(&decoder("dec", 4, 16, false).unwrap(), &opts)
            .unwrap();
        let mul = flow
            .run(&array_multiplier("mul8", 8).unwrap(), &opts)
            .unwrap();
        assert!(mul.min_period > dec.min_period);
        assert!(mul.stdcell_area > dec.stdcell_area);
    }

    #[test]
    fn memory_block_end_to_end() {
        let tech = Technology::cmos65();
        let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap();
        let lib = BrickLibrary::generate(&tech, &[spec], &[2]).unwrap();
        let mut n = Netlist::new("mem32x10");
        let clk = n.add_clock("clk");
        let en = n.add_input("en");
        let outs = n.add_macro("u_bank", "brick_8t_16_10_x2", &[clk, en], 10, "arbl");
        for o in outs {
            n.mark_output(o);
        }
        let rep = PhysicalSynthesis::new(&tech, &lib)
            .run(&n, &FlowOptions::default())
            .unwrap();
        let entry = lib.get("brick_8t_16_10_x2").unwrap();
        assert!(rep.min_period >= entry.estimate.min_cycle());
        assert!(rep.macro_area.value() > 0.0);
        assert!(rep.power.macros.value() > 0.0);
    }

    #[test]
    fn deterministic_reports() {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let dec = decoder("dec", 4, 16, true).unwrap();
        let flow = PhysicalSynthesis::new(&tech, &lib);
        let a = flow.run(&dec, &FlowOptions::default()).unwrap();
        let b = flow.run(&dec, &FlowOptions::default()).unwrap();
        assert_eq!(a.fmax.value(), b.fmax.value());
        assert_eq!(a.wirelength.value(), b.wirelength.value());
    }
}
