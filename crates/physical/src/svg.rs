//! SVG rendering of floorplans and placements.
//!
//! The paper's Fig. 4a is a die photo; the closest offline artifact is a
//! vector rendering of the synthesized layout: die outline, brick macros,
//! cell rows and placed standard cells. The output is plain SVG text,
//! viewable in any browser.

use crate::floorplan::Floorplan;
use crate::place::Placement;
use lim_rtl::Netlist;
use std::fmt::Write as _;

/// Pixels per micron in the rendering.
const SCALE: f64 = 8.0;

/// Renders the floorplan and placement as an SVG document.
pub fn render(netlist: &Netlist, floorplan: &Floorplan, placement: &Placement) -> String {
    let w = floorplan.width.value() * SCALE;
    let h = floorplan.height.value() * SCALE;
    // SVG y grows downward; flip so the die origin is bottom-left.
    let y = |v: f64| h - v * SCALE;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"##,
        w + 2.0,
        h + 2.0,
        w + 2.0,
        h + 2.0
    );
    let _ = writeln!(
        s,
        r##"<rect x="0" y="0" width="{w:.1}" height="{h:.1}" fill="#fdfdf6" stroke="#333" stroke-width="1"/>"##
    );

    // Standard-cell rows.
    for row in &floorplan.rows {
        let _ = writeln!(
            s,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="1" fill="#e8e8e8"/>"##,
            row.x_start.value() * SCALE,
            y(row.y.value()),
            row.width().value() * SCALE
        );
    }

    // Macros (brick banks).
    for m in &floorplan.macros {
        let _ = writeln!(
            s,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#7fb3d5" stroke="#1a5276" stroke-width="0.8"/>"##,
            m.x.value() * SCALE,
            y(m.y.value() + m.height.value()),
            m.width.value() * SCALE,
            m.height.value() * SCALE
        );
        let _ = writeln!(
            s,
            r##"<text x="{:.1}" y="{:.1}" font-size="8" fill="#1a5276">{}</text>"##,
            m.x.value() * SCALE + 2.0,
            y(m.y.value() + m.height.value() / 2.0),
            m.instance
        );
    }

    // Placed standard cells.
    for (i, pos) in placement.cell_pos.iter().enumerate() {
        if let Some((x, cy)) = pos {
            let seq = netlist.cells()[i].kind.is_sequential();
            let color = if seq { "#c0392b" } else { "#58d68d" };
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="2.4" height="2.4" fill="{color}"/>"##,
                x * SCALE - 1.2,
                y(*cy) - 1.2
            );
        }
    }

    let _ = writeln!(s, "</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::FloorplanOptions;
    use crate::place::{place, PlaceEffort};
    use lim_brick::{BitcellKind, BrickLibrary, BrickSpec};
    use lim_tech::Technology;

    #[test]
    fn svg_renders_cells_rows_and_macros() {
        let tech = Technology::cmos65();
        let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap();
        let lib = BrickLibrary::generate(&tech, &[spec], &[2]).unwrap();
        let mut n = Netlist::new("svg_test");
        let clk = n.add_clock("clk");
        let d = n.add_input("d");
        let q = n.add_dff(d, 1.0, "q");
        let inv = n
            .add_gate(lim_rtl::StdCellKind::Inv, 1.0, &[q], "inv")
            .unwrap();
        n.mark_output(inv);
        let outs = n.add_macro("u_bank", "brick_8t_16_10_x2", &[clk, d], 10, "arbl");
        for o in outs {
            n.mark_output(o);
        }
        let fp = Floorplan::build(&tech, &n, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &n, &fp, 3, PlaceEffort::default()).unwrap();
        let svg = render(&n, &fp, &pl);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("u_bank"));
        // One red (sequential) and one green (combinational) cell.
        assert!(svg.contains("#c0392b"));
        assert!(svg.contains("#58d68d"));
        // Macro fill present.
        assert!(svg.contains("#7fb3d5"));
        // Every placed cell rendered.
        let cell_rects = svg.matches(r##"width="2.4""##).count();
        let placed = pl.cell_pos.iter().filter(|p| p.is_some()).count();
        assert_eq!(cell_rects, placed);
    }
}
