//! Clock-tree synthesis model.
//!
//! The flow's STA assumes an ideal clock; this module makes the clock
//! network explicit: a buffered fanout tree from the clock root to every
//! sequential sink (flip-flop clock pins and brick macro clock pins),
//! with level-by-level logical-effort sizing, an insertion-delay and skew
//! estimate from placement spread, and the wire + buffer capacitance that
//! the power analysis charges to the clock.

use crate::floorplan::Floorplan;
use crate::place::Placement;
use crate::route::NetRoute;
use lim_brick::BrickLibrary;
use lim_rtl::{CellKind, Netlist};
use lim_tech::units::{Femtofarads, Microns, Picoseconds};
use lim_tech::Technology;

/// Maximum sinks per clock buffer.
pub const CLOCK_FANOUT: usize = 16;

/// Result of clock-tree construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockTreeReport {
    /// Clocked sinks (DFF + macro clock pins).
    pub sinks: usize,
    /// Buffers inserted.
    pub buffers: usize,
    /// Tree depth in buffer levels.
    pub levels: usize,
    /// Total clock network capacitance (sink pins + buffers + wire).
    pub total_cap: Femtofarads,
    /// Estimated insertion delay from clock root to sinks.
    pub insertion_delay: Picoseconds,
    /// Estimated worst skew between any two sinks.
    pub skew: Picoseconds,
    /// Estimated clock wirelength.
    pub wirelength: Microns,
}

/// Builds the clock-tree estimate for a placed design.
///
/// Returns `None` when the design has no clock or no sequential sinks.
pub fn build(
    tech: &Technology,
    netlist: &Netlist,
    placement: &Placement,
    floorplan: &Floorplan,
    library: &BrickLibrary,
) -> Result<Option<ClockTreeReport>, crate::PhysicalError> {
    let Some(_clk) = netlist.clock() else {
        return Ok(None);
    };

    // Gather sink positions and pin caps.
    let mut sinks: Vec<((f64, f64), f64)> = Vec::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        match &cell.kind {
            CellKind::Gate { kind, drive } if kind.is_sequential() => {
                let pos = placement.cell_pos[i].unwrap_or((0.0, 0.0));
                sinks.push((pos, kind.clock_cap(tech, *drive).value()));
            }
            CellKind::Macro { lib_name } => {
                let entry = library.get(lib_name)?;
                let pos = floorplan
                    .macros
                    .iter()
                    .find(|m| m.instance == cell.name)
                    .map(|m| {
                        let (x, y) = m.center();
                        (x.value(), y.value())
                    })
                    .unwrap_or((0.0, 0.0));
                sinks.push((pos, entry.clk_pin_cap.value()));
            }
            _ => {}
        }
    }
    if sinks.is_empty() {
        return Ok(None);
    }

    // Level structure: group sinks CLOCK_FANOUT at a time until one root
    // buffer remains.
    let mut level_count = 0usize;
    let mut buffers = 0usize;
    let mut nodes = sinks.len();
    while nodes > 1 {
        nodes = nodes.div_ceil(CLOCK_FANOUT);
        buffers += nodes;
        level_count += 1;
    }
    if level_count == 0 {
        level_count = 1;
        buffers = 1;
    }

    // Wirelength estimate: each level spans a fraction of the die
    // half-perimeter; leaf level reaches every sink.
    let die_hp = floorplan.width.value() + floorplan.height.value();
    let sink_spread = {
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for ((x, y), _) in &sinks {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
        ((x1 - x0) + (y1 - y0)).max(1.0)
    };
    let wirelength = sink_spread + die_hp * level_count as f64 * 0.5;

    // Capacitance: sink pins + buffer input caps (4x buffers) + wire.
    let buffer_drive = 4.0;
    let pin_cap: f64 = sinks.iter().map(|(_, c)| c).sum();
    let buf_cap = buffers as f64 * tech.c_unit.value() * buffer_drive;
    let wire_cap = tech.wire_c_per_um.value() * wirelength;
    let total_cap = Femtofarads::new(pin_cap + buf_cap + wire_cap);

    // Insertion delay: per level, a 4x buffer driving ~CLOCK_FANOUT
    // buffer inputs plus its share of wire.
    let per_level_load = Femtofarads::new(
        CLOCK_FANOUT as f64 * tech.c_unit.value() * buffer_drive
            + wire_cap / level_count.max(1) as f64,
    );
    let r_buf = tech.drive_resistance(buffer_drive);
    let per_level =
        Picoseconds::new(r_buf.value() * per_level_load.value()) + tech.tau * tech.p_inv * 2.0;
    let insertion_delay = per_level * level_count as f64;

    // Skew: mismatch between shortest and longest branch, dominated by
    // the leaf-level wire spread (empirical 10 % of insertion + RC of the
    // spread wire).
    let spread_rc = Picoseconds::new(
        tech.wire_r_per_um.value() * sink_spread * tech.wire_c_per_um.value() * sink_spread / 2.0,
    );
    let skew = insertion_delay * 0.10 + spread_rc;

    Ok(Some(ClockTreeReport {
        sinks: sinks.len(),
        buffers,
        levels: level_count,
        total_cap,
        insertion_delay,
        skew,
        wirelength: Microns::new(wirelength),
    }))
}

/// The clock capacitance to use in power analysis when a tree report is
/// available (replaces the bare clock-net estimate).
pub fn clock_cap_for_power(report: &ClockTreeReport, fallback: &NetRoute) -> Femtofarads {
    report.total_cap.max(fallback.total_cap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::FloorplanOptions;
    use crate::place::{place, PlaceEffort};
    use lim_rtl::generators::register;

    fn placed(bits: usize) -> (Netlist, Floorplan, Placement, BrickLibrary) {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let n = register("regs", bits).unwrap();
        let fp = Floorplan::build(&tech, &n, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &n, &fp, 9, PlaceEffort::default()).unwrap();
        (n, fp, pl, lib)
    }

    #[test]
    fn tree_covers_all_sinks() {
        let tech = Technology::cmos65();
        let (n, fp, pl, lib) = placed(40);
        let rep = build(&tech, &n, &pl, &fp, &lib).unwrap().unwrap();
        assert_eq!(rep.sinks, 40);
        assert!(rep.buffers >= 40usize.div_ceil(CLOCK_FANOUT));
        assert!(rep.levels >= 1);
        assert!(rep.total_cap.value() > 0.0);
        assert!(rep.insertion_delay.value() > 0.0);
        assert!(rep.skew < rep.insertion_delay);
    }

    #[test]
    fn more_sinks_more_tree() {
        let tech = Technology::cmos65();
        let (n1, fp1, pl1, lib) = placed(8);
        let (n2, fp2, pl2, _) = placed(128);
        let small = build(&tech, &n1, &pl1, &fp1, &lib).unwrap().unwrap();
        let big = build(&tech, &n2, &pl2, &fp2, &lib).unwrap().unwrap();
        assert!(big.buffers > small.buffers);
        assert!(big.total_cap > small.total_cap);
        assert!(big.levels >= small.levels);
    }

    #[test]
    fn pure_combinational_design_has_no_tree() {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let n = lim_rtl::generators::decoder("dec", 3, 8, false).unwrap();
        let fp = Floorplan::build(&tech, &n, &lib, &FloorplanOptions::default()).unwrap();
        let pl = place(&tech, &n, &fp, 9, PlaceEffort::default()).unwrap();
        assert!(build(&tech, &n, &pl, &fp, &lib).unwrap().is_none());
    }
}
