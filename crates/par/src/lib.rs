//! `lim-par`: a zero-dependency scoped work-stealing pool.
//!
//! The LiM flow's hot loops — DSE point sweeps, per-configuration golden
//! validation, brick-library batch compiles, benchmark-suite generation
//! — are embarrassingly parallel: independent items, no shared mutable
//! state, results wanted in input order. This crate fans such loops
//! across `std::thread::scope` workers with no external dependencies:
//!
//! * Items are split into **chunks** (the deque granularity) and dealt
//!   round-robin onto per-worker deques. Each worker drains its own
//!   deque from the front and, when empty, **steals** from the back of a
//!   sibling's deque, so stragglers re-balance automatically.
//! * Results carry their chunk index, so [`par_map`] returns them in
//!   **input order** — output is bit-identical for any worker count,
//!   which keeps seeded tests and golden reports stable.
//! * The worker count honours the `LIM_PAR_THREADS` environment
//!   variable, defaulting to [`std::thread::available_parallelism`].
//!   Valid values are positive integers; they are clamped to `1..=64`
//!   (so `LIM_PAR_THREADS=4096` runs 64 workers). `LIM_PAR_THREADS=1`
//!   is an exact serial execution on the calling thread. Invalid values
//!   — `0`, empty, or non-numeric — are **rejected**, not silently
//!   coerced: the pool falls back to the default worker count, logs a
//!   one-time warning to stderr, and bumps the `par.env_invalid` obs
//!   counter so CI can catch a typoed override.
//! * Per-pool-invocation `lim-obs` counters (`par.tasks`,
//!   `par.chunks_stolen`, `par.busy_us`, per-worker
//!   `par.worker<N>.busy_us`) are aggregated on the **calling** thread
//!   after the join, so they land in the caller's thread-local report
//!   even though the work ran elsewhere.
//! * **Trace and span adoption**: each worker inherits the calling
//!   thread's `lim-obs` trace id for its lifetime, so a request id
//!   minted before the fan-out is visible (`lim_obs::trace::current()`)
//!   inside every task. When obs collection is enabled, each worker's
//!   captured span tree is grafted back under the caller's currently
//!   open span after the join — in worker-index order, so the adopted
//!   tree is deterministic for a fixed worker count.
//!
//! # Examples
//!
//! ```
//! let squares = lim_par::par_map((0..100u64).collect(), |x| x * x);
//! assert_eq!(squares[7], 49);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding the worker count (clamped `1..=64`).
pub const ENV_THREADS: &str = "LIM_PAR_THREADS";

/// Upper bound on workers regardless of the override.
const MAX_THREADS: usize = 64;

/// Chunks dealt per worker when splitting a batch; more chunks means
/// finer-grained stealing at slightly higher bookkeeping cost.
const CHUNKS_PER_WORKER: usize = 4;

/// How the `LIM_PAR_THREADS` environment value classified.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EnvThreads {
    /// Variable not present: use the machine default.
    Unset,
    /// A positive integer, already clamped to `1..=MAX_THREADS`.
    Valid(usize),
    /// Present but unusable (`0`, empty, or non-numeric): warn and use
    /// the machine default.
    Invalid(String),
}

/// Strictly classifies a raw `LIM_PAR_THREADS` value. `0` is invalid
/// (a pool cannot have zero workers, and silently running serial would
/// mask the typo); values above [`MAX_THREADS`] clamp.
fn classify_env(raw: Option<&str>) -> EnvThreads {
    let Some(raw) = raw else {
        return EnvThreads::Unset;
    };
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => EnvThreads::Invalid(raw.to_owned()),
        Ok(n) => EnvThreads::Valid(n.min(MAX_THREADS)),
    }
}

/// The machine's available parallelism, clamped to `1..=MAX_THREADS`.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// The worker count [`par_map`] and [`par_for_each`] use: the
/// `LIM_PAR_THREADS` override when set and valid, otherwise the
/// machine's available parallelism. An invalid override (`0`, empty,
/// non-numeric) falls back to the default with a one-time stderr
/// warning and a `par.env_invalid` counter bump.
pub fn threads() -> usize {
    let raw = std::env::var(ENV_THREADS).ok();
    match classify_env(raw.as_deref()) {
        EnvThreads::Valid(n) => n,
        EnvThreads::Unset => default_threads(),
        EnvThreads::Invalid(raw) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "lim-par: ignoring invalid {ENV_THREADS}=`{raw}` \
                     (expected an integer in 1..={MAX_THREADS}); \
                     using {} worker(s)",
                    default_threads()
                );
                lim_obs::counter_add("par.env_invalid", 1);
            });
            default_threads()
        }
    }
}

/// A chunk of work: the flat index of its first item plus the items.
struct Chunk<T> {
    id: usize,
    items: Vec<T>,
}

/// Maps `f` over `items` on the shared pool, returning results in input
/// order (identical to `items.into_iter().map(f).collect()` for every
/// worker count).
///
/// `f` may run on any worker thread; panics propagate to the caller
/// after all workers have joined.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with_threads(threads(), items, f)
}

/// [`par_map`] with an explicit worker count (bypasses the
/// `LIM_PAR_THREADS` lookup; used by determinism tests).
pub fn par_map_with_threads<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_items = items.len();
    let workers = workers.clamp(1, MAX_THREADS).min(n_items.max(1));
    if workers <= 1 || n_items <= 1 {
        lim_obs::counter_add("par.tasks", n_items as u64);
        return items.into_iter().map(f).collect();
    }

    // Deal chunks round-robin onto per-worker deques.
    let chunk_len = n_items.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let mut deques: Vec<Mutex<VecDeque<Chunk<T>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    {
        let mut items = items.into_iter();
        let mut id = 0usize;
        let mut w = 0usize;
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            deques[w]
                .get_mut()
                .expect("fresh mutex cannot be poisoned")
                .push_back(Chunk { id, items: chunk });
            id = id.saturating_add(1);
            w = (w + 1) % workers;
        }
    }

    struct WorkerStats {
        busy: Duration,
        steals: u64,
        /// The worker's captured thread-local obs state (spans opened by
        /// `f`, counters it bumped), adopted by the caller after join.
        report: Option<lim_obs::Report>,
    }

    let results: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    let stats: Mutex<Vec<(usize, WorkerStats)>> = Mutex::new(Vec::new());
    let deques = &deques;
    let f = &f;
    let results_ref = &results;
    let stats_ref = &stats;
    let obs_on = lim_obs::enabled();
    let trace = lim_obs::trace::current();

    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                // Inherit the caller's request trace id: worker threads
                // are fresh, so this is their id for the whole lifetime.
                lim_obs::trace::set_current(trace);
                let mut busy = Duration::ZERO;
                let mut steals = 0u64;
                loop {
                    // Own deque first (front), then steal (back).
                    let mut chunk = deques[w]
                        .lock()
                        .expect("worker panicked holding deque lock")
                        .pop_front();
                    if chunk.is_none() {
                        for offset in 1..workers {
                            let victim = (w + offset) % workers;
                            let stolen = deques[victim]
                                .lock()
                                .expect("worker panicked holding deque lock")
                                .pop_back();
                            if stolen.is_some() {
                                steals += 1;
                                chunk = stolen;
                                break;
                            }
                        }
                    }
                    // No task spawns new tasks, so all-empty means done.
                    let Some(chunk) = chunk else { break };
                    let start = Instant::now();
                    let out: Vec<R> = chunk.items.into_iter().map(f).collect();
                    busy += start.elapsed();
                    results_ref
                        .lock()
                        .expect("worker panicked holding results lock")
                        .push((chunk.id, out));
                }
                let report = obs_on.then(|| lim_obs::Report::capture_as("lim-par-worker"));
                stats_ref
                    .lock()
                    .expect("worker panicked holding stats lock")
                    .push((
                        w,
                        WorkerStats {
                            busy,
                            steals,
                            report,
                        },
                    ));
            });
        }
    });

    // Aggregate observability on the calling thread: worker threads have
    // their own (discarded) thread-local obs state.
    let mut stats = stats.into_inner().expect("scope joined all workers");
    stats.sort_unstable_by_key(|(w, _)| *w);
    let mut total_busy = Duration::ZERO;
    let mut total_steals = 0u64;
    for (w, s) in &stats {
        total_busy += s.busy;
        total_steals += s.steals;
        lim_obs::counter_add(&format!("par.worker{w}.busy_us"), s.busy.as_micros() as u64);
        // Graft the worker's spans/counters under the caller's open
        // span, in worker-index order for a deterministic merged tree.
        if let Some(report) = &s.report {
            lim_obs::absorb_report(report);
        }
    }
    lim_obs::counter_add("par.tasks", n_items as u64);
    lim_obs::counter_add("par.chunks_stolen", total_steals);
    lim_obs::counter_add("par.busy_us", total_busy.as_micros() as u64);
    lim_obs::gauge_set("par.workers", workers as f64);

    let mut chunks = results.into_inner().expect("scope joined all workers");
    chunks.sort_unstable_by_key(|(id, _)| *id);
    let mut out = Vec::with_capacity(n_items);
    for (_, mut part) in chunks {
        out.append(&mut part);
    }
    out
}

/// Runs `f` over `items` on the shared pool for its side effects.
pub fn par_for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    par_map(items, f);
}

/// Scoped fork-join: hands a [`std::thread::Scope`] to `f`, joining all
/// spawned threads before returning. A thin veneer over
/// [`std::thread::scope`] so callers need only this crate for both
/// batch maps and ad-hoc task spawning.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    std::thread::scope(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        for workers in [1usize, 2, 3, 8] {
            let got = par_map_with_threads(workers, (0..257u64).collect(), |x| x * 3);
            let want: Vec<u64> = (0..257).map(|x| x * 3).collect();
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![9u32], |x| x + 1), vec![10]);
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let serial = par_map_with_threads(1, (0..100u64).collect(), |x| x.wrapping_mul(x));
        let parallel = par_map_with_threads(8, (0..100u64).collect(), |x| x.wrapping_mul(x));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn uneven_work_rebalances_via_stealing() {
        // Front-loaded cost: without stealing, worker 0 would own nearly
        // all the work. The result must still come back in order.
        let got = par_map_with_threads(4, (0..64u32).collect(), |x| {
            if x < 8 {
                // Spin a little to make early chunks slow.
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_add(i ^ u64::from(x));
                }
                std::hint::black_box(acc);
            }
            x
        });
        assert_eq!(got, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn par_for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        par_for_each((1..=100u64).collect(), |x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    /// Serializes tests that toggle the process-global obs flag.
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn steal_counters_land_on_calling_thread() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        lim_obs::set_enabled(true);
        lim_obs::reset();
        let _ = par_map_with_threads(4, (0..64u32).collect(), |x| x);
        let report = lim_obs::Report::capture();
        assert_eq!(report.counter("par.tasks"), Some(64));
        // Steal count is scheduling-dependent; the counter just has to
        // exist once a parallel invocation ran.
        assert!(report.counter("par.chunks_stolen").is_some());
        lim_obs::set_enabled(false);
    }

    #[test]
    fn workers_inherit_trace_id_and_spans_are_adopted() {
        use lim_obs::trace::{self, TraceId};
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        lim_obs::set_enabled(true);
        lim_obs::reset();
        let _scope_guard = trace::TraceScope::enter(TraceId(0xfeed));
        let seen: Vec<Option<TraceId>> = {
            let _fan = lim_obs::Span::enter("fan");
            par_map_with_threads(4, (0..64u32).collect(), |_| {
                let _s = lim_obs::Span::enter("task");
                trace::current()
            })
        };
        // Every task, on whatever worker it landed, saw the caller's id.
        assert!(seen.iter().all(|&t| t == Some(TraceId(0xfeed))), "{seen:?}");
        // Worker-side spans were grafted under the caller's open span.
        let report = lim_obs::Report::capture();
        let task = report.span("fan/task").expect("adopted worker span");
        assert_eq!(task.calls, 64);
        lim_obs::set_enabled(false);
        lim_obs::reset();
    }

    #[test]
    fn scope_joins_spawned_threads() {
        let mut a = 0u32;
        let mut b = 0u32;
        scope(|s| {
            s.spawn(|| a = 1);
            s.spawn(|| b = 2);
        });
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn thread_count_is_clamped() {
        let n = par_map_with_threads(usize::MAX, vec![1u8, 2, 3], |x| x);
        assert_eq!(n, vec![1, 2, 3]);
        assert!(threads() >= 1);
    }

    #[test]
    fn env_override_classification_is_strict() {
        assert_eq!(classify_env(None), EnvThreads::Unset);
        assert_eq!(classify_env(Some("1")), EnvThreads::Valid(1));
        assert_eq!(classify_env(Some("8")), EnvThreads::Valid(8));
        assert_eq!(classify_env(Some(" 16 ")), EnvThreads::Valid(16));
        // Above the cap clamps rather than errors.
        assert_eq!(classify_env(Some("4096")), EnvThreads::Valid(MAX_THREADS));
        // Zero, empty and non-numeric values are invalid, not coerced.
        for bad in ["0", "", "  ", "four", "-2", "3.5", "0x8"] {
            assert_eq!(
                classify_env(Some(bad)),
                EnvThreads::Invalid(bad.to_owned()),
                "`{bad}` must be rejected"
            );
        }
    }
}
