//! Logic-in-Memory (LiM) synthesis: the primary contribution of the
//! DAC'15 paper, as a library.
//!
//! The flow (paper Fig. 2): smart memories are described structurally,
//! bitcell arrays map to compiled **memory bricks** (`lim-brick`), custom
//! periphery and computation logic map to pattern-compatible standard
//! cells (`lim-rtl`), and the whole block goes through conventional
//! physical synthesis (`lim-physical`) — the memory macro is a "white
//! box" whose boundary logic synthesis can see through.
//!
//! This crate provides:
//!
//! * [`sram`] — the 1R1W SRAM smart-memory generator (paper Fig. 3):
//!   stacked bricks, read/write decoders, bank enables and output muxing,
//!   with arbitrary partitioning (Fig. 4 configurations A–E).
//! * [`cam`] — the CAM smart-memory generator used by the SpGEMM
//!   accelerator (paper Fig. 5): search registers, match-line capture,
//!   priority decode and a sequencer.
//! * [`flow`] — [`LimFlow`]: one object that compiles bricks on demand,
//!   generates RTL, and runs it through mapping + physical synthesis to a
//!   [`LimBlock`] report.
//! * [`dse`] — rapid design-space exploration over brick/partition
//!   choices (paper Fig. 4c), with pareto-front extraction.
//! * [`rtl_infer`] — the behavioral-RTL entry point: parse a
//!   `reg [W-1:0] mem [D-1:0]` design, infer its memories, choose each
//!   one's brick decomposition via [`dse`], lower to a smart memory and
//!   run the full flow ([`infer_and_synthesize`]).
//! * [`chip`] — silicon emulation: die-to-die variation and measurement
//!   noise sampling so library-based simulation can be compared against
//!   "chip measurements" (paper Fig. 4b).
//!
//! # Examples
//!
//! Build the paper's configuration B (32x10 b SRAM from two stacked
//! 16x10 b bricks) and synthesize it:
//!
//! ```
//! use lim::flow::LimFlow;
//! use lim::sram::SramConfig;
//!
//! # fn main() -> Result<(), lim::LimError> {
//! let mut flow = LimFlow::cmos65();
//! let config = SramConfig::new(32, 10, 1, 16)?;
//! let block = flow.synthesize_sram(&config)?;
//! assert!(block.report.fmax.value() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod cam;
pub mod cam_sim;
pub mod chip;
pub mod dse;
pub mod error;
pub mod flow;
pub mod interpolation;
pub mod parallel_access;
pub mod rtl_infer;
pub mod soc;
pub mod sram;
pub mod sram_sim;

pub use chip::{ChipSample, SiliconEmulation};
pub use dse::{pareto_front, DsePoint};
pub use error::LimError;
pub use flow::{LimBlock, LimFlow};
pub use parallel_access::ParallelAccessConfig;
pub use rtl_infer::{infer_and_synthesize, MemoryPlan, RtlInferReport};
pub use sram::SramConfig;
