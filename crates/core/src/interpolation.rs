//! LiM interpolation memory (paper §2.2, after Zhu et al. \[13\]).
//!
//! The second smart-memory example the paper cites: a "LiM based seed
//! table that uses a parallel access memory as a smaller seed table and
//! interpolates the required data on the fly as if it is readily
//! stored" — the accelerator for polar-to-rectangular conversion in
//! synthetic aperture radar. Instead of storing a `table_size`-entry
//! lookup table, only `seed_size` seeds are stored and the block computes
//! a linear interpolation between the two bracketing seeds on every read.
//!
//! This module carries both views:
//!
//! * a **behavioural model** ([`InterpolationMemory`]) that quantifies
//!   the accuracy the application gives up;
//! * **netlist generation + synthesis** comparing the LiM block (seed
//!   brick, burst decoder fetching two adjacent seeds, lerp datapath)
//!   against the conventional full-table SRAM it replaces.

use crate::error::LimError;
use crate::flow::{LimBlock, LimFlow};
use lim_brick::{BitcellKind, BrickLibrary, BrickSpec};
use lim_rtl::{NetId, Netlist, StdCellKind};
use lim_tech::Technology;

/// Geometry of the interpolated table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterpolationConfig {
    /// Logical table entries the application addresses.
    pub table_size: usize,
    /// Seeds actually stored (must divide `table_size`).
    pub seed_size: usize,
    /// Data width.
    pub data_bits: usize,
}

impl InterpolationConfig {
    /// The SAR-style default: a 1024-entry table from 64 seeds.
    pub fn sar_default() -> Self {
        InterpolationConfig {
            table_size: 1024,
            seed_size: 64,
            data_bits: 12,
        }
    }

    /// Entries synthesized per stored seed.
    pub fn expansion_factor(&self) -> usize {
        self.table_size / self.seed_size
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LimError::BadConfig`] for zero sizes, a non-dividing
    /// seed count, or a factor of 1 (nothing to interpolate).
    pub fn validate(&self) -> Result<(), LimError> {
        if self.table_size == 0 || self.seed_size == 0 || self.data_bits == 0 {
            return Err(LimError::BadConfig {
                reason: "interpolation dimensions must be non-zero".into(),
            });
        }
        if !self.table_size.is_multiple_of(self.seed_size) || self.expansion_factor() < 2 {
            return Err(LimError::BadConfig {
                reason: format!(
                    "{} seeds must divide {} entries with factor ≥ 2",
                    self.seed_size, self.table_size
                ),
            });
        }
        if !self.seed_size.is_power_of_two() {
            return Err(LimError::BadConfig {
                reason: "seed count must be a power of two".into(),
            });
        }
        Ok(())
    }
}

/// Behavioural model: seeds plus on-the-fly linear interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolationMemory {
    config: InterpolationConfig,
    seeds: Vec<f64>,
}

impl InterpolationMemory {
    /// Builds the seed table by sampling `f` over `[0, 1)`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation.
    pub fn from_fn(
        config: InterpolationConfig,
        mut f: impl FnMut(f64) -> f64,
    ) -> Result<Self, LimError> {
        config.validate()?;
        // One extra seed so the last segment has a right endpoint.
        let seeds = (0..=config.seed_size)
            .map(|i| f(i as f64 / config.seed_size as f64))
            .collect();
        Ok(InterpolationMemory { config, seeds })
    }

    /// The configuration.
    pub fn config(&self) -> &InterpolationConfig {
        &self.config
    }

    /// Reads logical entry `idx` — interpolated, "as if readily stored".
    ///
    /// # Panics
    ///
    /// Panics if `idx >= table_size`.
    pub fn read(&self, idx: usize) -> f64 {
        assert!(idx < self.config.table_size, "index out of table");
        let factor = self.config.expansion_factor();
        let seg = idx / factor;
        let frac = (idx % factor) as f64 / factor as f64;
        self.seeds[seg] * (1.0 - frac) + self.seeds[seg + 1] * frac
    }

    /// Worst absolute error against a directly sampled full table of `f`.
    pub fn max_error(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        (0..self.config.table_size)
            .map(|i| {
                let exact = f(i as f64 / self.config.table_size as f64);
                (self.read(i) - exact).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Storage ratio versus the full table (< 1; the LiM win).
    pub fn storage_ratio(&self) -> f64 {
        (self.config.seed_size + 1) as f64 / self.config.table_size as f64
    }
}

/// Generates the LiM interpolation-memory netlist: seed brick, burst
/// decoder that activates two adjacent seed rows per access (the
/// parallel-access trick of \[7\]), and the lerp datapath
/// `s0 + (s1 − s0) · frac` built from synthesized arithmetic.
///
/// # Errors
///
/// Propagates configuration, brick and netlist errors.
pub fn generate_lim(
    tech: &Technology,
    config: &InterpolationConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    config.validate()?;
    let brick_words = config.seed_size.min(16);
    let stack = config.seed_size / brick_words;
    let spec = BrickSpec::new(BitcellKind::Sram8T, brick_words, config.data_bits)?;
    let entry = format!("{}_x{stack}", spec.instance_name());
    library.get_or_insert(tech, &spec, stack)?;

    let mut n = Netlist::new(format!(
        "interp_{}from{}x{}",
        config.table_size, config.seed_size, config.data_bits
    ));
    let clk = n.add_clock("clk");
    let en = n.add_input("en");
    let addr_bits = config.seed_size.trailing_zeros() as usize;
    let frac_bits = config.expansion_factor().trailing_zeros().max(1) as usize;
    let addr: Vec<NetId> = (0..addr_bits).map(|i| n.add_input(format!("addr[{i}]"))).collect();
    let frac: Vec<NetId> = (0..frac_bits).map(|i| n.add_input(format!("frac[{i}]"))).collect();
    let addr_n: Vec<NetId> = addr
        .iter()
        .enumerate()
        .map(|(i, &a)| n.add_gate(StdCellKind::Inv, 2.0, &[a], format!("addr_n[{i}]")))
        .collect::<Result<_, _>>()?;

    // Burst decoder: wordline w fires for address w and w−1, so rows w
    // and w+1 of the seed table are both read in one access.
    let mut hot = Vec::with_capacity(config.seed_size);
    for w in 0..config.seed_size {
        let lits: Vec<NetId> = (0..addr_bits)
            .map(|b| if (w >> b) & 1 == 1 { addr[b] } else { addr_n[b] })
            .collect();
        hot.push(lim_rtl::generators::and_tree(&mut n, &lits, &format!("d{w}"))?);
    }
    let mut dwl = Vec::with_capacity(config.seed_size);
    for w in 0..config.seed_size {
        dwl.push(if w == 0 {
            n.add_gate(StdCellKind::Buf, 2.0, &[hot[0]], "b0")?
        } else {
            n.add_gate(StdCellKind::Or2, 1.0, &[hot[w], hot[w - 1]], format!("b{w}"))?
        });
    }

    // Seed bank (reads two rows via the burst lines; the even/odd split
    // of a real design is folded into one macro here).
    let mut inputs = vec![clk, en];
    inputs.extend(&dwl);
    inputs.extend(&dwl);
    let zeros: Vec<NetId> = (0..config.data_bits)
        .map(|b| n.add_tie(false, format!("wd{b}")))
        .collect();
    inputs.extend(&zeros);
    let s0 = n.add_macro("u_seed_even", entry.clone(), &inputs.clone(), config.data_bits, "s0");
    let s1 = n.add_macro("u_seed_odd", entry, &inputs, config.data_bits, "s1");

    // Lerp datapath: diff = s1 − s0 (two's complement), prod = diff·frac,
    // out = s0 + prod (dropping the fraction bits).
    let one = n.add_tie(true, "one");
    let s1_n: Vec<NetId> = s1
        .iter()
        .enumerate()
        .map(|(i, &x)| n.add_gate(StdCellKind::Inv, 1.0, &[x], format!("s1n{i}")))
        .collect::<Result<_, _>>()?;
    // s0 + !s1 + 1 = s0 - s1; we want s1 - s0, sign handled by symmetric
    // datapath — for area purposes the magnitude path suffices.
    let mut carry = one;
    let mut diff = Vec::with_capacity(config.data_bits);
    for i in 0..config.data_bits {
        diff.push(n.add_gate(
            StdCellKind::FaSum,
            1.0,
            &[s0[i], s1_n[i], carry],
            format!("df{i}"),
        )?);
        carry = n.add_gate(
            StdCellKind::FaCarry,
            1.0,
            &[s0[i], s1_n[i], carry],
            format!("dc{i}"),
        )?;
    }
    // prod = diff · frac, truncated to data_bits (carry-save rows).
    let zero = n.add_tie(false, "zero");
    let mut acc: Vec<NetId> = vec![zero; config.data_bits];
    for (j, &fbit) in frac.iter().enumerate() {
        let mut carry = zero;
        let mut next = acc.clone();
        for (i, &d_i) in diff
            .iter()
            .enumerate()
            .take(config.data_bits - j.min(config.data_bits))
        {
            let w = i + j;
            if w >= config.data_bits {
                break;
            }
            let pp = n.add_gate(StdCellKind::And2, 1.0, &[d_i, fbit], format!("pp{j}_{i}"))?;
            next[w] = n.add_gate(
                StdCellKind::FaSum,
                1.0,
                &[pp, acc[w], carry],
                format!("ps{j}_{w}"),
            )?;
            carry = n.add_gate(
                StdCellKind::FaCarry,
                1.0,
                &[pp, acc[w], carry],
                format!("pc{j}_{w}"),
            )?;
        }
        acc = next;
    }
    // out = s0 + acc.
    let mut carry = zero;
    for i in 0..config.data_bits {
        let s = n.add_gate(
            StdCellKind::FaSum,
            1.0,
            &[s0[i], acc[i], carry],
            format!("o{i}"),
        )?;
        carry = n.add_gate(
            StdCellKind::FaCarry,
            1.0,
            &[s0[i], acc[i], carry],
            format!("oc{i}"),
        )?;
        let q = n.add_dff(s, 1.0, format!("dout[{i}]"));
        n.mark_output(q);
    }
    n.validate()?;
    Ok(n)
}

/// Generates the conventional alternative: the full `table_size`-entry
/// SRAM with a plain decoder.
///
/// # Errors
///
/// Propagates configuration and generation failures.
pub fn generate_full_table(
    tech: &Technology,
    config: &InterpolationConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    config.validate()?;
    let cfg = crate::sram::SramConfig::new(config.table_size, config.data_bits, 1, 16)?;
    crate::sram::generate(tech, &cfg, library)
}

/// Synthesized comparison of the two implementations.
#[derive(Debug, Clone)]
pub struct InterpolationComparison {
    /// The LiM seed-table block.
    pub lim: LimBlock,
    /// The conventional full-table block.
    pub full_table: LimBlock,
}

impl InterpolationComparison {
    /// Die-area advantage of the seed-table approach.
    pub fn area_advantage(&self) -> f64 {
        self.full_table.report.die_area.value() / self.lim.report.die_area.value()
    }
}

impl LimFlow {
    /// Synthesizes both interpolation-memory implementations.
    ///
    /// # Errors
    ///
    /// Propagates generation and synthesis failures.
    pub fn compare_interpolation(
        &mut self,
        config: &InterpolationConfig,
    ) -> Result<InterpolationComparison, LimError> {
        let tech = self.technology().clone();
        let lim_netlist = generate_lim(&tech, config, self.library_mut())?;
        let lim = self.synthesize(&lim_netlist)?;
        let full_netlist = generate_full_table(&tech, config, self.library_mut())?;
        let full_table = self.synthesize(&full_netlist)?;
        Ok(InterpolationComparison { lim, full_table })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(InterpolationConfig::sar_default().validate().is_ok());
        let bad = InterpolationConfig {
            table_size: 100,
            seed_size: 64,
            data_bits: 12,
        };
        assert!(bad.validate().is_err());
        let degenerate = InterpolationConfig {
            table_size: 64,
            seed_size: 64,
            data_bits: 12,
        };
        assert!(degenerate.validate().is_err());
    }

    #[test]
    fn behavioural_accuracy_on_smooth_functions() {
        let cfg = InterpolationConfig::sar_default();
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let mem = InterpolationMemory::from_fn(cfg, f).unwrap();
        // Exact at the seed points.
        assert!((mem.read(0) - f(0.0)).abs() < 1e-12);
        // Linear interpolation of a sine over 64 segments: error bounded
        // by (segment width)²/8 · max|f''| ≈ 1.2e-3.
        let err = mem.max_error(f);
        assert!(err < 2e-3, "max error {err}");
        // Storage shrinks by ~16x.
        assert!(mem.storage_ratio() < 0.07);
    }

    #[test]
    fn coarser_seeds_trade_accuracy_for_storage() {
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let fine = InterpolationMemory::from_fn(
            InterpolationConfig {
                table_size: 1024,
                seed_size: 128,
                data_bits: 12,
            },
            f,
        )
        .unwrap();
        let coarse = InterpolationMemory::from_fn(
            InterpolationConfig {
                table_size: 1024,
                seed_size: 16,
                data_bits: 12,
            },
            f,
        )
        .unwrap();
        assert!(coarse.max_error(f) > fine.max_error(f));
        assert!(coarse.storage_ratio() < fine.storage_ratio());
    }

    #[test]
    fn lim_netlist_generates_and_wins_area() {
        // Small instance keeps synthesis quick: 256-entry table from 32
        // seeds.
        let cfg = InterpolationConfig {
            table_size: 256,
            seed_size: 32,
            data_bits: 8,
        };
        let mut flow = LimFlow::cmos65();
        let cmp = flow.compare_interpolation(&cfg).unwrap();
        assert!(
            cmp.area_advantage() > 1.5,
            "area advantage {} (factor {} table)",
            cmp.area_advantage(),
            cfg.expansion_factor()
        );
        // The seed block is real logic, not an empty wrapper.
        assert!(cmp.lim.gate_count > 100);
        assert!(cmp.lim.macro_count == 2 && cmp.full_table.macro_count == 1);
    }
}
