//! Silicon emulation: sampling "fabricated chips" from a synthesized
//! block.
//!
//! Fig. 4b compares chip measurements (averaged over multiple dies, with
//! min/max bars) against library-based simulation corners. The paper's
//! testbed is fabricated 65 nm silicon; our substitute samples die-to-die
//! process variation and measurement noise around the physically
//! synthesized block's nominal figures, using the technology's calibrated
//! sigma values. Sampling is seeded and deterministic.

use lim_physical::BlockReport;
use lim_tech::units::{Femtojoules, Megahertz};
use lim_tech::Technology;
use lim_testkit::TestRng;

/// One sampled die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSample {
    /// Measured maximum frequency of this die.
    pub fmax: Megahertz,
    /// Measured energy per cycle at fmax.
    pub energy_per_cycle: Femtojoules,
}

/// Aggregated measurements over a lot of dies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LotSummary {
    /// Mean fmax.
    pub fmax_mean: Megahertz,
    /// Slowest die.
    pub fmax_min: Megahertz,
    /// Fastest die.
    pub fmax_max: Megahertz,
    /// Mean energy per cycle.
    pub energy_mean: Femtojoules,
    /// Lowest-energy die.
    pub energy_min: Femtojoules,
    /// Highest-energy die.
    pub energy_max: Femtojoules,
}

/// The corner spread the library-based simulation reports (best /
/// nominal / worst), mirroring Fig. 4b's simulation bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationCorners {
    /// Fast corner fmax.
    pub best: Megahertz,
    /// Typical corner fmax.
    pub nominal: Megahertz,
    /// Slow corner fmax.
    pub worst: Megahertz,
}

/// The silicon emulator.
#[derive(Debug, Clone)]
pub struct SiliconEmulation {
    speed_sigma: f64,
    power_sigma: f64,
    /// Multiplicative measurement noise (tester repeatability).
    measurement_sigma: f64,
    seed: u64,
}

impl SiliconEmulation {
    /// Creates an emulator using the technology's variation model.
    pub fn new(tech: &Technology, seed: u64) -> Self {
        SiliconEmulation {
            speed_sigma: tech.speed_sigma,
            power_sigma: tech.power_sigma,
            measurement_sigma: 0.01,
            seed,
        }
    }

    /// Samples `n` dies of the given block.
    pub fn sample(&self, report: &BlockReport, n: usize) -> Vec<ChipSample> {
        let mut rng = TestRng::seed_from_u64(self.seed);
        (0..n)
            .map(|_| {
                let speed = 1.0 + self.speed_sigma * gaussian(&mut rng);
                let power = 1.0 + self.power_sigma * gaussian(&mut rng);
                let meas = 1.0 + self.measurement_sigma * gaussian(&mut rng);
                ChipSample {
                    fmax: report.fmax * (speed * meas).max(0.5),
                    energy_per_cycle: report.energy_per_cycle * (power * meas).max(0.5),
                }
            })
            .collect()
    }

    /// Samples a lot and summarizes it.
    pub fn measure_lot(&self, report: &BlockReport, dies: usize) -> LotSummary {
        let samples = self.sample(report, dies.max(1));
        let n = samples.len() as f64;
        let fmax_mean = samples.iter().map(|s| s.fmax.value()).sum::<f64>() / n;
        let e_mean = samples.iter().map(|s| s.energy_per_cycle.value()).sum::<f64>() / n;
        LotSummary {
            fmax_mean: Megahertz::new(fmax_mean),
            fmax_min: samples
                .iter()
                .map(|s| s.fmax)
                .fold(samples[0].fmax, Megahertz::min),
            fmax_max: samples
                .iter()
                .map(|s| s.fmax)
                .fold(samples[0].fmax, Megahertz::max),
            energy_mean: Femtojoules::new(e_mean),
            energy_min: samples
                .iter()
                .map(|s| s.energy_per_cycle)
                .fold(samples[0].energy_per_cycle, Femtojoules::min),
            energy_max: samples
                .iter()
                .map(|s| s.energy_per_cycle)
                .fold(samples[0].energy_per_cycle, Femtojoules::max),
        }
    }

    /// Parametric yield: the fraction of `dies` sampled dies whose fmax
    /// meets `target` — the speed-binning curve a product team would draw
    /// from the Fig. 4b measurements.
    pub fn yield_at(&self, report: &BlockReport, dies: usize, target: Megahertz) -> f64 {
        let samples = self.sample(report, dies.max(1));
        samples.iter().filter(|s| s.fmax.value() >= target.value()).count() as f64
            / samples.len() as f64
    }

    /// The simulation corner spread for a block: ±3σ process speed around
    /// the nominal STA result.
    pub fn simulation_corners(&self, report: &BlockReport) -> SimulationCorners {
        SimulationCorners {
            best: report.fmax * (1.0 + 3.0 * self.speed_sigma),
            nominal: report.fmax,
            worst: report.fmax * (1.0 - 3.0 * self.speed_sigma),
        }
    }
}

/// Standard normal via Box–Muller on top of the testkit's uniform
/// generator.
fn gaussian(rng: &mut TestRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_brick::BrickLibrary;
    use lim_physical::flow::{FlowOptions, PhysicalSynthesis};
    use lim_rtl::generators::decoder;

    fn block() -> BlockReport {
        let tech = Technology::cmos65();
        let lib = BrickLibrary::new();
        let dec = decoder("dec", 4, 16, true).unwrap();
        PhysicalSynthesis::new(&tech, &lib)
            .run(&dec, &FlowOptions::default())
            .unwrap()
    }

    #[test]
    fn lot_brackets_nominal() {
        let tech = Technology::cmos65();
        let rep = block();
        let emu = SiliconEmulation::new(&tech, 99);
        let lot = emu.measure_lot(&rep, 20);
        assert!(lot.fmax_min <= lot.fmax_mean && lot.fmax_mean <= lot.fmax_max);
        // Nominal should be inside (or near) the observed spread.
        assert!(rep.fmax.value() > lot.fmax_min.value() * 0.9);
        assert!(rep.fmax.value() < lot.fmax_max.value() * 1.1);
        assert!(lot.energy_min <= lot.energy_mean && lot.energy_mean <= lot.energy_max);
    }

    #[test]
    fn deterministic_per_seed_and_spread_nonzero() {
        let tech = Technology::cmos65();
        let rep = block();
        let a = SiliconEmulation::new(&tech, 7).sample(&rep, 10);
        let b = SiliconEmulation::new(&tech, 7).sample(&rep, 10);
        let c = SiliconEmulation::new(&tech, 8).sample(&rep, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Dies differ from each other.
        assert!(a.windows(2).any(|w| w[0].fmax != w[1].fmax));
    }

    #[test]
    fn yield_curve_is_monotone_and_anchored() {
        let tech = Technology::cmos65();
        let rep = block();
        let emu = SiliconEmulation::new(&tech, 5);
        let nominal = rep.fmax.value();
        let easy = emu.yield_at(&rep, 200, Megahertz::new(nominal * 0.8));
        let mid = emu.yield_at(&rep, 200, Megahertz::new(nominal));
        let hard = emu.yield_at(&rep, 200, Megahertz::new(nominal * 1.2));
        assert!(easy >= mid && mid >= hard, "{easy} {mid} {hard}");
        assert!(easy > 0.99, "4σ below nominal should all pass: {easy}");
        assert!(hard < 0.01, "4σ above nominal should all fail: {hard}");
        assert!(mid > 0.2 && mid < 0.8, "nominal splits the lot: {mid}");
    }

    #[test]
    fn corners_ordered() {
        let tech = Technology::cmos65();
        let rep = block();
        let c = SiliconEmulation::new(&tech, 1).simulation_corners(&rep);
        assert!(c.worst < c.nominal && c.nominal < c.best);
    }

    #[test]
    fn gaussian_has_roughly_zero_mean_unit_variance() {
        let mut rng = TestRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
