//! Error type for the LiM synthesis flow.

use std::error::Error;
use std::fmt;

/// Errors raised while generating or synthesizing LiM blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum LimError {
    /// A smart-memory configuration is inconsistent.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Brick compilation or library generation failed.
    Brick(lim_brick::BrickError),
    /// RTL generation failed.
    Rtl(lim_rtl::RtlError),
    /// Physical synthesis failed.
    Physical(lim_physical::PhysicalError),
}

impl fmt::Display for LimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimError::BadConfig { reason } => write!(f, "bad smart-memory config: {reason}"),
            LimError::Brick(e) => write!(f, "brick error: {e}"),
            LimError::Rtl(e) => write!(f, "rtl error: {e}"),
            LimError::Physical(e) => write!(f, "physical synthesis error: {e}"),
        }
    }
}

impl Error for LimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LimError::Brick(e) => Some(e),
            LimError::Rtl(e) => Some(e),
            LimError::Physical(e) => Some(e),
            LimError::BadConfig { .. } => None,
        }
    }
}

impl From<lim_brick::BrickError> for LimError {
    fn from(e: lim_brick::BrickError) -> Self {
        LimError::Brick(e)
    }
}

impl From<lim_rtl::RtlError> for LimError {
    fn from(e: lim_rtl::RtlError) -> Self {
        LimError::Rtl(e)
    }
}

impl From<lim_physical::PhysicalError> for LimError {
    fn from(e: lim_physical::PhysicalError) -> Self {
        LimError::Physical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LimError::BadConfig {
            reason: "128 words not divisible".into(),
        };
        assert!(e.to_string().contains("divisible"));
        assert!(e.source().is_none());
        let w = LimError::from(lim_rtl::RtlError::UnknownNet(0));
        assert!(w.source().is_some());
    }
}
