//! [`LimFlow`]: the end-to-end LiM synthesis pipeline (paper Fig. 2).
//!
//! One object owns the technology and a growing brick library; smart
//! memories are generated as netlists, bricks are compiled and
//! characterized on demand, and the whole block runs through mapping and
//! physical synthesis to a [`LimBlock`].

use crate::cam::{self, SpgemmCoreConfig};
use crate::error::LimError;
use crate::sram::{self, SramConfig};
use lim_brick::BrickLibrary;
use lim_physical::flow::{FlowOptions, PhysicalSynthesis};
use lim_physical::power::MacroActivity;
use lim_physical::BlockReport;
use lim_rtl::mapping::optimize;
use lim_rtl::Netlist;
use lim_tech::Technology;

/// A synthesized LiM block: the netlist statistics plus the physical
/// report.
#[derive(Debug, Clone)]
pub struct LimBlock {
    /// Design name.
    pub name: String,
    /// Standard cells after optimization.
    pub gate_count: usize,
    /// Brick macros instantiated.
    pub macro_count: usize,
    /// The physical synthesis report (fmax, area, power, critical path).
    pub report: BlockReport,
}

/// The LiM synthesis flow.
#[derive(Debug, Clone)]
pub struct LimFlow {
    tech: Technology,
    library: BrickLibrary,
    /// Placement/flow options reused across runs.
    pub options: FlowOptions,
}

impl LimFlow {
    /// A flow over the 65 nm-class technology.
    pub fn cmos65() -> Self {
        Self::new(Technology::cmos65())
    }

    /// A flow over an explicit technology.
    pub fn new(tech: Technology) -> Self {
        Self::with_library(tech, BrickLibrary::new())
    }

    /// A flow seeded with an existing (warm) brick library.
    ///
    /// This is the resident-process entry point: a long-lived server
    /// snapshots its shared library, hands the clone to a flow run so
    /// every already-characterized brick is a cache hit, and afterwards
    /// folds the grown library back with [`LimFlow::into_library`] +
    /// [`BrickLibrary::absorb`]. Results are identical to a cold flow —
    /// cached entries are byte-for-byte what a fresh compile produces —
    /// so warm and cold runs of the same design agree exactly.
    pub fn with_library(tech: Technology, library: BrickLibrary) -> Self {
        LimFlow {
            tech,
            library,
            options: FlowOptions::default(),
        }
    }

    /// Consumes the flow, returning the library it accumulated.
    pub fn into_library(self) -> BrickLibrary {
        self.library
    }

    /// The technology in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The brick library accumulated so far.
    pub fn library(&self) -> &BrickLibrary {
        &self.library
    }

    /// Mutable access to the library, for generators that register their
    /// own bank macros before synthesis.
    pub fn library_mut(&mut self) -> &mut BrickLibrary {
        &mut self.library
    }

    /// Generates and synthesizes a 1R1W SRAM.
    ///
    /// The power model accounts bank-enable gating: each of the
    /// `partitions` macros is read on `1/partitions` of the cycles.
    ///
    /// # Errors
    ///
    /// Propagates generation and synthesis failures.
    pub fn synthesize_sram(&mut self, config: &SramConfig) -> Result<LimBlock, LimError> {
        let _span = lim_obs::Span::enter("lim_flow");
        let netlist = {
            let _gen = lim_obs::Span::enter("generate");
            sram::generate(&self.tech, config, &mut self.library)?
        };
        let mut options = self.options.clone();
        options.macro_activity = MacroActivity {
            read_rate: 1.0 / config.partitions() as f64,
            write_rate: 0.0,
            match_rate: 0.0,
        };
        self.synthesize_with(&netlist, &options)
    }

    /// Generates and synthesizes one horizontal CAM block (paper Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates generation and synthesis failures.
    pub fn synthesize_cam_block(
        &mut self,
        config: &crate::cam::CamConfig,
    ) -> Result<LimBlock, LimError> {
        let _span = lim_obs::Span::enter("lim_flow");
        let netlist = {
            let _gen = lim_obs::Span::enter("generate");
            crate::cam::generate_cam_block(&self.tech, config, &mut self.library)?
        };
        let mut options = self.options.clone();
        options.macro_activity = MacroActivity {
            read_rate: 0.2,
            write_rate: 0.2,
            match_rate: 1.0,
        };
        self.synthesize_with(&netlist, &options)
    }

    /// Generates and synthesizes the LiM CAM-SpGEMM compute core.
    ///
    /// # Errors
    ///
    /// Propagates generation and synthesis failures.
    pub fn synthesize_lim_spgemm(
        &mut self,
        config: &SpgemmCoreConfig,
    ) -> Result<LimBlock, LimError> {
        let _span = lim_obs::Span::enter("lim_flow");
        let netlist = {
            let _gen = lim_obs::Span::enter("generate");
            cam::generate_lim_spgemm_core(&self.tech, config, &mut self.library)?
        };
        let mut options = self.options.clone();
        // One column matches per cycle; its pad reads and writes back.
        options.macro_activity = MacroActivity {
            read_rate: 1.0 / config.n_columns as f64,
            write_rate: 1.0 / config.n_columns as f64,
            match_rate: 1.0 / config.n_columns as f64,
        };
        self.synthesize_with(&netlist, &options)
    }

    /// Generates and synthesizes the heap/FIFO baseline SpGEMM core.
    ///
    /// # Errors
    ///
    /// Propagates generation and synthesis failures.
    pub fn synthesize_heap_spgemm(
        &mut self,
        config: &SpgemmCoreConfig,
    ) -> Result<LimBlock, LimError> {
        let _span = lim_obs::Span::enter("lim_flow");
        let netlist = {
            let _gen = lim_obs::Span::enter("generate");
            cam::generate_heap_spgemm_core(&self.tech, config, &mut self.library)?
        };
        let mut options = self.options.clone();
        // FIFO shifting touches the pads every cycle: reads and writes on
        // most cycles — the baseline's energy handicap.
        options.macro_activity = MacroActivity {
            read_rate: 1.0,
            write_rate: 0.8,
            match_rate: 0.0,
        };
        self.synthesize_with(&netlist, &options)
    }

    /// Optimizes and physically synthesizes an arbitrary netlist against
    /// the accumulated library.
    ///
    /// # Errors
    ///
    /// Propagates mapping and synthesis failures.
    pub fn synthesize(&mut self, netlist: &Netlist) -> Result<LimBlock, LimError> {
        let _span = lim_obs::Span::enter("lim_flow");
        let options = self.options.clone();
        self.synthesize_with(netlist, &options)
    }

    fn synthesize_with(
        &mut self,
        netlist: &Netlist,
        options: &FlowOptions,
    ) -> Result<LimBlock, LimError> {
        let (mapped, _stats) = optimize(netlist)?;
        let report = PhysicalSynthesis::new(&self.tech, &self.library).run(&mapped, options)?;
        let macro_count = mapped
            .cells()
            .iter()
            .filter(|c| matches!(c.kind, lim_rtl::CellKind::Macro { .. }))
            .count();
        Ok(LimBlock {
            name: mapped.name().to_owned(),
            gate_count: mapped.cell_count() - macro_count,
            macro_count,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cam::CamConfig;

    #[test]
    fn fig4b_configurations_order_correctly() {
        // Perf: A > B > C > D, and B > E > D. Energy per access:
        // E < D. This is the heart of Fig. 4b.
        let mut flow = LimFlow::cmos65();
        let a = flow
            .synthesize_sram(&SramConfig::new(16, 10, 1, 16).unwrap())
            .unwrap();
        let b = flow
            .synthesize_sram(&SramConfig::new(32, 10, 1, 16).unwrap())
            .unwrap();
        let c = flow
            .synthesize_sram(&SramConfig::new(64, 10, 1, 16).unwrap())
            .unwrap();
        let d = flow
            .synthesize_sram(&SramConfig::new(128, 10, 1, 16).unwrap())
            .unwrap();
        let e = flow
            .synthesize_sram(&SramConfig::new(128, 10, 4, 16).unwrap())
            .unwrap();

        let f = |b: &LimBlock| b.report.fmax.value();
        assert!(f(&a) > f(&b), "A {} vs B {}", f(&a), f(&b));
        assert!(f(&b) > f(&c), "B {} vs C {}", f(&b), f(&c));
        assert!(f(&c) > f(&d), "C {} vs D {}", f(&c), f(&d));
        assert!(f(&e) > f(&d), "E {} vs D {}", f(&e), f(&d));
        assert!(f(&b) > f(&e), "B {} vs E {}", f(&b), f(&e));

        // Bank gating: E spends less energy per access than D.
        assert!(
            e.report.power.macros.value() / e.report.fmax.value()
                < d.report.power.macros.value() / d.report.fmax.value(),
            "E macro energy should undercut D"
        );
        // Partitioning costs area.
        assert!(e.report.die_area > d.report.die_area);
    }

    #[test]
    fn library_grows_on_demand() {
        let mut flow = LimFlow::cmos65();
        assert!(flow.library().is_empty());
        flow.synthesize_sram(&SramConfig::new(32, 10, 1, 16).unwrap())
            .unwrap();
        assert!(flow.library().get("brick_8t_16_10_x2").is_ok());
    }

    #[test]
    fn second_build_of_same_brick_is_cache_hit() {
        let mut flow = LimFlow::cmos65();
        let config = SramConfig::new(32, 10, 1, 16).unwrap();
        flow.synthesize_sram(&config).unwrap();
        let (hits_before, misses_before) =
            (flow.library().cache_hits(), flow.library().cache_misses());
        assert_eq!(misses_before, 1);
        // Re-synthesizing the same memory must not compile or
        // characterize the brick again.
        flow.synthesize_sram(&config).unwrap();
        assert_eq!(flow.library().cache_hits(), hits_before + 1);
        assert_eq!(flow.library().cache_misses(), misses_before);
        assert_eq!(flow.library().len(), 1);
    }

    #[test]
    fn warm_library_flow_matches_cold_flow() {
        // A resident process checks a warm library out, runs, and folds
        // it back; the block report must match a cold run exactly and
        // the warm run must not recompile anything.
        let config = SramConfig::new(32, 10, 1, 16).unwrap();
        let mut cold = LimFlow::cmos65();
        let cold_block = cold.synthesize_sram(&config).unwrap();
        let warm_library = cold.into_library();
        assert_eq!(warm_library.cache_misses(), 1);

        let mut warm = LimFlow::with_library(Technology::cmos65(), warm_library);
        let warm_block = warm.synthesize_sram(&config).unwrap();
        assert_eq!(warm.library().cache_misses(), 1, "no recompilation");
        assert!(warm.library().cache_hits() >= 1);
        assert_eq!(warm_block.report.fmax, cold_block.report.fmax);
        assert_eq!(warm_block.report.die_area, cold_block.report.die_area);
        assert_eq!(warm_block.gate_count, cold_block.gate_count);

        // Folding the grown library back into a shared base keeps one
        // entry per key.
        let mut base = BrickLibrary::new();
        base.absorb(warm.into_library());
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn small_spgemm_cores_synthesize() {
        let mut flow = LimFlow::cmos65();
        // Keep the test-size core small; the full 32-column chip runs in
        // the benchmark binaries.
        let cfg = SpgemmCoreConfig {
            n_columns: 4,
            cam: CamConfig {
                entries: 8,
                key_bits: 6,
                data_bits: 6,
            },
        };
        let lim = flow.synthesize_lim_spgemm(&cfg).unwrap();
        let heap = flow.synthesize_heap_spgemm(&cfg).unwrap();
        assert!(lim.macro_count > heap.macro_count);
        // The CAM-based core clocks slower than the FIFO baseline
        // (matching the paper's 475 vs 725 MHz contrast).
        assert!(
            lim.report.fmax.value() < heap.report.fmax.value(),
            "lim {} vs heap {}",
            lim.report.fmax,
            heap.report.fmax
        );
    }
}
