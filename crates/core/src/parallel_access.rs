//! Parallel-access smart memory (paper §2.2, after Murachi et al. \[7\]).
//!
//! The motivating example the paper gives for application-specific smart
//! memories before introducing its flow: a `K x L` pixel store that
//! serves an `m x n` window per cycle.
//!
//! * **Conventional ASIC approach**: pixels are spread over `m·n`
//!   independent banks for conflict-free access, each bank carrying its
//!   own full decoder — it "does not exploit the address pattern
//!   commonality between the accessed pixels" and "area and energy
//!   penalties are incurred".
//! * **LiM smart memory**: the same banks, but with *shared, customized*
//!   decoders — one row decoder per bank row activates the adjacent
//!   wordlines of all `n` banks in its group, and a single column
//!   decoder selects per group — so decode logic is built once instead
//!   of `m·n` times.
//!
//! Both generators target identical brick macros; the difference is
//! exactly the synthesized periphery, which is what the flow lets you
//! customize. The conventional variant is additionally floorplanned as a
//! conventional (non-pattern-construct) design, paying guard spacing at
//! every memory/logic boundary.

use crate::error::LimError;
use crate::flow::{LimBlock, LimFlow};
use lim_brick::{BitcellKind, BrickLibrary, BrickSpec};
use lim_rtl::generators::and_tree;
use lim_rtl::{NetId, Netlist, StdCellKind};
use lim_tech::Technology;

/// Geometry of the pixel store and access window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelAccessConfig {
    /// Image rows (K).
    pub image_rows: usize,
    /// Image columns (L).
    pub image_cols: usize,
    /// Window rows (m) — also the number of bank rows.
    pub window_rows: usize,
    /// Window columns (n) — also the number of banks per row group.
    pub window_cols: usize,
    /// Bits per pixel.
    pub pixel_bits: usize,
}

impl ParallelAccessConfig {
    /// A motion-estimation-style default: 32x32 image, 4x4 window,
    /// 8-bit pixels.
    pub fn motion_estimation() -> Self {
        ParallelAccessConfig {
            image_rows: 32,
            image_cols: 32,
            window_rows: 4,
            window_cols: 4,
            pixel_bits: 8,
        }
    }

    /// Validates divisibility and sizes.
    ///
    /// # Errors
    ///
    /// Returns [`LimError::BadConfig`] when the window does not tile the
    /// image or any dimension is zero.
    pub fn validate(&self) -> Result<(), LimError> {
        if self.image_rows == 0
            || self.image_cols == 0
            || self.window_rows == 0
            || self.window_cols == 0
            || self.pixel_bits == 0
        {
            return Err(LimError::BadConfig {
                reason: "parallel-access dimensions must be non-zero".into(),
            });
        }
        if !self.image_rows.is_multiple_of(self.window_rows) || !self.image_cols.is_multiple_of(self.window_cols) {
            return Err(LimError::BadConfig {
                reason: format!(
                    "window {}x{} does not tile image {}x{}",
                    self.window_rows, self.window_cols, self.image_rows, self.image_cols
                ),
            });
        }
        if !self.words_per_bank().is_power_of_two() {
            return Err(LimError::BadConfig {
                reason: format!(
                    "{} words per bank must be a power of two",
                    self.words_per_bank()
                ),
            });
        }
        Ok(())
    }

    /// Total banks (`m · n`).
    pub fn banks(&self) -> usize {
        self.window_rows * self.window_cols
    }

    /// Pixels (words) per bank.
    pub fn words_per_bank(&self) -> usize {
        self.image_rows * self.image_cols / self.banks()
    }

    /// Address bits of one bank.
    pub fn bank_addr_bits(&self) -> usize {
        usize::BITS as usize - (self.words_per_bank() - 1).leading_zeros() as usize
    }

    /// The brick spec each bank stacks (16-word bricks).
    ///
    /// # Errors
    ///
    /// Propagates brick validation.
    pub fn bank_brick(&self) -> Result<BrickSpec, LimError> {
        let brick_words = self.words_per_bank().min(16);
        Ok(BrickSpec::new(
            BitcellKind::Sram8T,
            brick_words,
            self.pixel_bits,
        )?)
    }

    /// Bricks stacked per bank.
    pub fn bank_stack(&self) -> usize {
        self.words_per_bank() / self.words_per_bank().min(16)
    }
}

fn ensure_bank_entry(
    tech: &Technology,
    cfg: &ParallelAccessConfig,
    library: &mut BrickLibrary,
) -> Result<String, LimError> {
    let spec = cfg.bank_brick()?;
    let name = format!("{}_x{}", spec.instance_name(), cfg.bank_stack());
    library.get_or_insert(tech, &spec, cfg.bank_stack())?;
    Ok(name)
}

/// Shared-decode one-hot of `addr` over `words` outputs, with an
/// "adjacent activation" OR stage (`out[w] = dec[w] | dec[w−1]`) — the
/// paper's customized decoder that serves a window straddling two rows.
fn burst_decoder(
    n: &mut Netlist,
    addr: &[NetId],
    addr_n: &[NetId],
    words: usize,
    label: &str,
) -> Result<Vec<NetId>, LimError> {
    let bits = addr.len();
    let mut hot = Vec::with_capacity(words);
    for w in 0..words {
        let lits: Vec<NetId> = (0..bits)
            .map(|b| if (w >> b) & 1 == 1 { addr[b] } else { addr_n[b] })
            .collect();
        hot.push(and_tree(n, &lits, &format!("{label}_d{w}"))?);
    }
    let mut burst = Vec::with_capacity(words);
    for w in 0..words {
        if w == 0 {
            burst.push(n.add_gate(StdCellKind::Buf, 2.0, &[hot[0]], format!("{label}_b0"))?);
        } else {
            burst.push(n.add_gate(
                StdCellKind::Or2,
                1.0,
                &[hot[w], hot[w - 1]],
                format!("{label}_b{w}"),
            )?);
        }
    }
    Ok(burst)
}

/// Plain one-hot decoder (per-bank, the conventional structure).
fn full_decoder(
    n: &mut Netlist,
    addr: &[NetId],
    addr_n: &[NetId],
    words: usize,
    label: &str,
) -> Result<Vec<NetId>, LimError> {
    let bits = addr.len();
    (0..words)
        .map(|w| {
            let lits: Vec<NetId> = (0..bits)
                .map(|b| if (w >> b) & 1 == 1 { addr[b] } else { addr_n[b] })
                .collect();
            Ok(and_tree(n, &lits, &format!("{label}_d{w}"))?)
        })
        .collect()
}

fn add_inputs(
    n: &mut Netlist,
    cfg: &ParallelAccessConfig,
) -> (Vec<NetId>, Vec<NetId>) {
    let bits = cfg.bank_addr_bits();
    let addr: Vec<NetId> = (0..bits).map(|i| n.add_input(format!("addr[{i}]"))).collect();
    let addr_n: Vec<NetId> = addr
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            n.add_gate(StdCellKind::Inv, 2.0, &[a], format!("addr_n[{i}]"))
                .expect("inverter arity")
        })
        .collect();
    (addr, addr_n)
}

fn instantiate_bank(
    n: &mut Netlist,
    clk: NetId,
    en: NetId,
    dwl: &[NetId],
    pixel_bits: usize,
    entry: &str,
    index: usize,
) -> Vec<NetId> {
    let mut inputs = vec![clk, en];
    inputs.extend(dwl);
    inputs.extend(dwl); // write port mirrors the read port structurally
    // Write data tied off: this memory is read-dominated (image loaded
    // once per frame).
    let zeros: Vec<NetId> = (0..pixel_bits)
        .map(|b| n.add_tie(false, format!("wd{index}_{b}")))
        .collect();
    inputs.extend(&zeros);
    n.add_macro(
        format!("u_bank{index}"),
        entry,
        &inputs,
        pixel_bits,
        &format!("q{index}"),
    )
}

/// Generates the LiM parallel-access memory: shared burst row decoders
/// (one per bank row, reused by all `n` banks of the group) and a single
/// column-select stage.
///
/// # Errors
///
/// Propagates configuration, brick and netlist errors.
pub fn generate_lim(
    tech: &Technology,
    cfg: &ParallelAccessConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    cfg.validate()?;
    let entry = ensure_bank_entry(tech, cfg, library)?;
    let mut n = Netlist::new(format!(
        "pam_lim_{}x{}_w{}x{}",
        cfg.image_rows, cfg.image_cols, cfg.window_rows, cfg.window_cols
    ));
    let clk = n.add_clock("clk");
    let en = n.add_input("en");
    let (addr, addr_n) = add_inputs(&mut n, cfg);

    // One shared burst decoder per bank row; its wordlines fan out to all
    // n banks of the group.
    for row in 0..cfg.window_rows {
        let dwl = burst_decoder(&mut n, &addr, &addr_n, cfg.words_per_bank(), &format!("r{row}"))?;
        for col in 0..cfg.window_cols {
            let index = row * cfg.window_cols + col;
            let outs = instantiate_bank(&mut n, clk, en, &dwl, cfg.pixel_bits, &entry, index);
            for (b, &o) in outs.iter().enumerate() {
                let q = n.add_gate(
                    StdCellKind::Buf,
                    2.0,
                    &[o],
                    format!("pix{index}[{b}]"),
                )?;
                n.mark_output(q);
            }
        }
    }
    n.validate()?;
    Ok(n)
}

/// Generates the conventional parallel-access memory: every one of the
/// `m·n` banks carries its own full decoder (no shared customization).
///
/// # Errors
///
/// Propagates configuration, brick and netlist errors.
pub fn generate_conventional(
    tech: &Technology,
    cfg: &ParallelAccessConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    cfg.validate()?;
    let entry = ensure_bank_entry(tech, cfg, library)?;
    let mut n = Netlist::new(format!(
        "pam_conv_{}x{}_w{}x{}",
        cfg.image_rows, cfg.image_cols, cfg.window_rows, cfg.window_cols
    ));
    let clk = n.add_clock("clk");
    let en = n.add_input("en");
    let (addr, addr_n) = add_inputs(&mut n, cfg);

    for index in 0..cfg.banks() {
        // Private decoder per bank — the duplicated logic the smart
        // memory eliminates.
        let dwl = full_decoder(&mut n, &addr, &addr_n, cfg.words_per_bank(), &format!("b{index}"))?;
        let gated: Vec<NetId> = dwl
            .iter()
            .enumerate()
            .map(|(w, &d)| {
                n.add_gate(StdCellKind::And2, 1.0, &[d, en], format!("b{index}_g{w}"))
            })
            .collect::<Result<_, _>>()?;
        let outs = instantiate_bank(&mut n, clk, en, &gated, cfg.pixel_bits, &entry, index);
        for (b, &o) in outs.iter().enumerate() {
            let q = n.add_gate(StdCellKind::Buf, 2.0, &[o], format!("pix{index}[{b}]"))?;
            n.mark_output(q);
        }
    }
    n.validate()?;
    Ok(n)
}

/// Side-by-side synthesis of both variants — the §2.2 comparison.
#[derive(Debug, Clone)]
pub struct ParallelAccessComparison {
    /// The LiM smart memory.
    pub lim: LimBlock,
    /// The conventional m·n-bank design.
    pub conventional: LimBlock,
}

impl ParallelAccessComparison {
    /// Die-area advantage of the LiM variant (> 1 means smaller).
    pub fn area_advantage(&self) -> f64 {
        self.conventional.report.die_area.value() / self.lim.report.die_area.value()
    }

    /// Energy-per-access advantage of the LiM variant (> 1 means less).
    pub fn energy_advantage(&self) -> f64 {
        self.conventional.report.energy_per_cycle.value()
            / self.lim.report.energy_per_cycle.value()
    }
}

impl LimFlow {
    /// Synthesizes both parallel-access variants; the conventional one is
    /// floorplanned as a non-pattern-construct design (guard spacing).
    ///
    /// # Errors
    ///
    /// Propagates generation and synthesis failures.
    pub fn compare_parallel_access(
        &mut self,
        cfg: &ParallelAccessConfig,
    ) -> Result<ParallelAccessComparison, LimError> {
        let lim = {
            let netlist = {
                let tech = self.technology().clone();
                generate_lim(&tech, cfg, self.library_mut())?
            };
            self.synthesize(&netlist)?
        };
        let conventional = {
            let tech = self.technology().clone();
            let netlist = generate_conventional(&tech, cfg, self.library_mut())?;
            let saved = self.options.clone();
            self.options.floorplan.conventional_logic = true;
            let block = self.synthesize(&netlist);
            self.options = saved;
            block?
        };
        Ok(ParallelAccessComparison { lim, conventional })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ParallelAccessConfig {
        ParallelAccessConfig::motion_estimation()
    }

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        let mut bad = cfg();
        bad.window_rows = 3;
        assert!(bad.validate().is_err());
        bad = cfg();
        bad.pixel_bits = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn derived_geometry() {
        let c = cfg();
        assert_eq!(c.banks(), 16);
        assert_eq!(c.words_per_bank(), 64);
        assert_eq!(c.bank_addr_bits(), 6);
        assert_eq!(c.bank_stack(), 4);
    }

    #[test]
    fn both_netlists_generate_and_validate() {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let lim = generate_lim(&tech, &cfg(), &mut lib).unwrap();
        let conv = generate_conventional(&tech, &cfg(), &mut lib).unwrap();
        assert!(lim.validate().is_ok());
        assert!(conv.validate().is_ok());
        // Same macro population, same outputs.
        let macros = |n: &Netlist| {
            n.cells()
                .iter()
                .filter(|c| matches!(c.kind, lim_rtl::CellKind::Macro { .. }))
                .count()
        };
        assert_eq!(macros(&lim), macros(&conv));
        assert_eq!(lim.primary_outputs().len(), conv.primary_outputs().len());
        // The conventional design duplicates decode logic m·n times.
        assert!(
            conv.cell_count() > 2 * lim.cell_count(),
            "conv {} vs lim {}",
            conv.cell_count(),
            lim.cell_count()
        );
    }

    #[test]
    fn lim_wins_area_and_energy() {
        let mut flow = LimFlow::cmos65();
        let cmp = flow.compare_parallel_access(&cfg()).unwrap();
        assert!(
            cmp.area_advantage() > 1.0,
            "area advantage {}",
            cmp.area_advantage()
        );
        assert!(
            cmp.energy_advantage() > 1.0,
            "energy advantage {}",
            cmp.energy_advantage()
        );
    }
}
