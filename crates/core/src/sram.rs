//! 1R1W SRAM smart-memory generation (paper Fig. 3 / Fig. 4).
//!
//! An SRAM is assembled from stacked memory bricks plus synthesized
//! standard-cell periphery: per-partition read/write decoders gated by
//! bank enables, and a registered output mux across partitions. The
//! paper's test-chip configurations map directly:
//!
//! | Config | words x bits | partitions | brick | stack |
//! |---|---|---|---|---|
//! | A | 16x10  | 1 | 16x10 | 1x |
//! | B | 32x10  | 1 | 16x10 | 2x |
//! | C | 64x10  | 1 | 16x10 | 4x |
//! | D | 128x10 | 1 | 16x10 | 8x |
//! | E | 128x10 | 4 | 16x10 | 2x |

use crate::error::LimError;
use lim_brick::{BitcellKind, BrickLibrary, BrickSpec};
use lim_rtl::generators::and_tree;
use lim_rtl::{NetId, Netlist, StdCellKind};
use lim_tech::Technology;
use std::fmt;

/// Configuration of a generated 1R1W SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramConfig {
    words: usize,
    bits: usize,
    partitions: usize,
    brick_words: usize,
    bitcell: BitcellKind,
}

impl SramConfig {
    /// Creates a configuration: `words x bits` total, split into
    /// `partitions` banks, each built from stacked `brick_words x bits`
    /// bricks (8T bitcells).
    ///
    /// # Errors
    ///
    /// Returns [`LimError::BadConfig`] unless `partitions` is a power of
    /// two and `words` divides evenly into `partitions · brick_words`
    /// stacks.
    pub fn new(
        words: usize,
        bits: usize,
        partitions: usize,
        brick_words: usize,
    ) -> Result<Self, LimError> {
        Self::with_bitcell(words, bits, partitions, brick_words, BitcellKind::Sram8T)
    }

    /// Like [`new`](Self::new) with an explicit bitcell flavor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn with_bitcell(
        words: usize,
        bits: usize,
        partitions: usize,
        brick_words: usize,
        bitcell: BitcellKind,
    ) -> Result<Self, LimError> {
        if words == 0 || bits == 0 || partitions == 0 || brick_words == 0 {
            return Err(LimError::BadConfig {
                reason: "all dimensions must be non-zero".into(),
            });
        }
        if !partitions.is_power_of_two() {
            return Err(LimError::BadConfig {
                reason: format!("partitions {partitions} must be a power of two"),
            });
        }
        if !words.is_multiple_of(partitions * brick_words) {
            return Err(LimError::BadConfig {
                reason: format!(
                    "{words} words do not divide into {partitions} partitions of \
                     {brick_words}-word bricks"
                ),
            });
        }
        if partitions > 1 && !(words / partitions).is_power_of_two() {
            return Err(LimError::BadConfig {
                reason: format!(
                    "{} words per partition must be a power of two for bank decoding",
                    words / partitions
                ),
            });
        }
        Ok(SramConfig {
            words,
            bits,
            partitions,
            brick_words,
            bitcell,
        })
    }

    /// Total words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of banks.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Words per brick.
    pub fn brick_words(&self) -> usize {
        self.brick_words
    }

    /// Bitcell flavor.
    pub fn bitcell(&self) -> BitcellKind {
        self.bitcell
    }

    /// Bricks stacked per partition.
    pub fn stack(&self) -> usize {
        self.words / (self.partitions * self.brick_words)
    }

    /// Words per partition.
    pub fn words_per_partition(&self) -> usize {
        self.words / self.partitions
    }

    /// Address width.
    pub fn addr_bits(&self) -> usize {
        if self.words <= 1 {
            1
        } else {
            usize::BITS as usize - (self.words - 1).leading_zeros() as usize
        }
    }

    /// Bank-select address bits.
    pub fn bank_bits(&self) -> usize {
        self.partitions.trailing_zeros() as usize
    }

    /// The brick spec each partition stacks.
    ///
    /// # Errors
    ///
    /// Propagates brick spec validation.
    pub fn brick_spec(&self) -> Result<BrickSpec, LimError> {
        Ok(BrickSpec::new(self.bitcell, self.brick_words, self.bits)?)
    }

    /// Library entry name of the per-partition bank macro.
    pub fn bank_entry_name(&self) -> Result<String, LimError> {
        Ok(format!("{}_x{}", self.brick_spec()?.instance_name(), self.stack()))
    }

    /// Design name, e.g. `sram_128x10_p4_b16`.
    pub fn design_name(&self) -> String {
        format!(
            "sram_{}x{}_p{}_b{}",
            self.words, self.bits, self.partitions, self.brick_words
        )
    }
}

impl fmt::Display for SramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}b SRAM, {} partition(s) of {}x {}x{}b bricks",
            self.words,
            self.bits,
            self.partitions,
            self.stack(),
            self.brick_words,
            self.bits
        )
    }
}

/// Generates the SRAM netlist, registering the needed bank macro in
/// `library` if absent.
///
/// Inputs (in order): `clk`, `raddr[..]`, `waddr[..]`, `we`,
/// `din[..]`. Outputs: `dout[..]`.
///
/// # Errors
///
/// Propagates configuration, brick and netlist errors.
pub fn generate(
    tech: &Technology,
    config: &SramConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    let entry_name = config.bank_entry_name()?;
    library.get_or_insert(tech, &config.brick_spec()?, config.stack())?;

    let mut n = Netlist::new(config.design_name());
    let clk = n.add_clock("clk");
    let addr_bits = config.addr_bits();
    let raddr: Vec<NetId> = (0..addr_bits)
        .map(|i| n.add_input(format!("raddr[{i}]")))
        .collect();
    let waddr: Vec<NetId> = (0..addr_bits)
        .map(|i| n.add_input(format!("waddr[{i}]")))
        .collect();
    let we = n.add_input("we");
    let din: Vec<NetId> = (0..config.bits())
        .map(|i| n.add_input(format!("din[{i}]")))
        .collect();

    // Complement rails.
    let raddr_n: Vec<NetId> = raddr
        .iter()
        .enumerate()
        .map(|(i, &a)| n.add_gate(StdCellKind::Inv, 2.0, &[a], format!("raddr_n[{i}]")))
        .collect::<Result<_, _>>()?;
    let waddr_n: Vec<NetId> = waddr
        .iter()
        .enumerate()
        .map(|(i, &a)| n.add_gate(StdCellKind::Inv, 2.0, &[a], format!("waddr_n[{i}]")))
        .collect::<Result<_, _>>()?;

    let local_bits = addr_bits - config.bank_bits();
    let wpp = config.words_per_partition();

    // Shared predecode of the local address bits in groups of up to three,
    // built once per port and reused by every bank — the structure real
    // SRAM decoders use, and what keeps the single-bank configuration's
    // decoder from dwarfing the partitioned one.
    let predecode = |n: &mut Netlist,
                     addr: &[NetId],
                     addr_n: &[NetId],
                     label: &str|
     -> Result<Vec<Vec<NetId>>, LimError> {
        let mut groups = Vec::new();
        let mut base = 0usize;
        while base < local_bits {
            let k = (local_bits - base).min(3);
            let mut lines = Vec::with_capacity(1 << k);
            for v in 0..(1usize << k) {
                let lits: Vec<NetId> = (0..k)
                    .map(|b| {
                        if (v >> b) & 1 == 1 {
                            addr[base + b]
                        } else {
                            addr_n[base + b]
                        }
                    })
                    .collect();
                lines.push(and_tree(n, &lits, &format!("{label}_g{base}_{v}"))?);
            }
            groups.push(lines);
            base += k;
        }
        Ok(groups)
    };
    let r_groups = predecode(&mut n, &raddr, &raddr_n, "rpd")?;
    let w_groups = predecode(&mut n, &waddr, &waddr_n, "wpd")?;
    let group_lines = |groups: &[Vec<NetId>], w: usize| -> Vec<NetId> {
        let mut lines = Vec::with_capacity(groups.len());
        let mut base = 0usize;
        for g in groups {
            let k = g.len().trailing_zeros() as usize;
            lines.push(g[(w >> base) & ((1 << k) - 1)]);
            base += k;
        }
        lines
    };

    let mut bank_outputs: Vec<Vec<NetId>> = Vec::with_capacity(config.partitions());
    for p in 0..config.partitions() {
        // Bank enable from the high address bits.
        let bank_lit = |addr: &[NetId], addr_inv: &[NetId], n2: &mut Netlist| -> Result<NetId, LimError> {
            if config.bank_bits() == 0 {
                return Ok(n2.add_tie(true, format!("bank{p}_always")));
            }
            let lits: Vec<NetId> = (0..config.bank_bits())
                .map(|b| {
                    if (p >> b) & 1 == 1 {
                        addr[local_bits + b]
                    } else {
                        addr_inv[local_bits + b]
                    }
                })
                .collect();
            Ok(and_tree(n2, &lits, &format!("bank{p}"))?)
        };
        let (r_en, w_en) = if config.bank_bits() == 0 {
            // Single bank: reads are unconditional, writes gate on `we`
            // alone (no tie-AND for the optimizer to chew on).
            (None, we)
        } else {
            let r_en = bank_lit(&raddr, &raddr_n, &mut n)?;
            let w_en_bank = bank_lit(&waddr, &waddr_n, &mut n)?;
            let w_en = n.add_gate(
                StdCellKind::And2,
                1.0,
                &[w_en_bank, we],
                format!("bank{p}_wen"),
            )?;
            (Some(r_en), w_en)
        };

        // Local decoders: AND of this word's predecode lines with the bank
        // enables.
        let mut rdwl = Vec::with_capacity(wpp);
        let mut wdwl = Vec::with_capacity(wpp);
        for w in 0..wpp {
            let mut r_ins = group_lines(&r_groups, w);
            if let Some(r_en) = r_en {
                r_ins.push(r_en);
            }
            rdwl.push(and_tree(&mut n, &r_ins, &format!("rdwl{p}_{w}"))?);
            let mut w_ins = group_lines(&w_groups, w);
            w_ins.push(w_en);
            wdwl.push(and_tree(&mut n, &w_ins, &format!("wdwl{p}_{w}"))?);
        }

        // Per-bank write-data drivers: every bank's write bitlines need
        // their own driver column.
        let bank_din: Vec<NetId> = din
            .iter()
            .enumerate()
            .map(|(b, &d)| n.add_gate(StdCellKind::Buf, 4.0, &[d], format!("wdrv{p}_{b}")))
            .collect::<Result<_, _>>()?;

        // The bank macro: clk, enable, decoded wordlines, write data.
        let en_pin = match r_en {
            Some(e) => e,
            None => n.add_tie(true, format!("bank{p}_en")),
        };
        let mut macro_inputs = vec![clk, en_pin];
        macro_inputs.extend(&rdwl);
        macro_inputs.extend(&wdwl);
        macro_inputs.extend(&bank_din);
        let outs = n.add_macro(
            format!("u_bank{p}"),
            entry_name.clone(),
            &macro_inputs,
            config.bits(),
            &format!("arbl{p}"),
        );
        bank_outputs.push(outs);
    }

    // Output stage: single partition buffers straight out; multiple
    // partitions mux on the registered bank-select bits (read data is a
    // cycle behind the address).
    if config.partitions() == 1 {
        for (b, &o) in bank_outputs[0].iter().enumerate() {
            let out = n.add_gate(StdCellKind::Buf, 2.0, &[o], format!("dout[{b}]"))?;
            n.mark_output(out);
        }
    } else {
        let sel_q: Vec<NetId> = (0..config.bank_bits())
            .map(|b| n.add_dff(raddr[local_bits + b], 1.0, format!("rsel_q[{b}]")))
            .collect();
        for b in 0..config.bits() {
            // Per-bank output buffers ahead of the mux column (each bank's
            // ARBL needs its own receiver).
            let mut layer: Vec<NetId> = bank_outputs
                .iter()
                .enumerate()
                .map(|(p, o)| {
                    n.add_gate(StdCellKind::Buf, 2.0, &[o[b]], format!("obuf{p}_{b}"))
                })
                .collect::<Result<_, _>>()?;
            for (level, &sel) in sel_q.iter().enumerate() {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for (i, pair) in layer.chunks(2).enumerate() {
                    if pair.len() == 2 {
                        next.push(n.add_gate(
                            StdCellKind::Mux2,
                            1.0,
                            &[pair[0], pair[1], sel],
                            format!("omux{b}_l{level}_{i}"),
                        )?);
                    } else {
                        next.push(pair[0]);
                    }
                }
                layer = next;
            }
            let out = n.add_gate(StdCellKind::Buf, 2.0, &[layer[0]], format!("dout[{b}]"))?;
            n.mark_output(out);
        }
    }

    n.validate()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(SramConfig::new(128, 10, 4, 16).is_ok());
        assert!(SramConfig::new(128, 10, 3, 16).is_err()); // not a power of 2
        assert!(SramConfig::new(100, 10, 4, 16).is_err()); // not divisible
        assert!(SramConfig::new(0, 10, 1, 16).is_err());
    }

    #[test]
    fn derived_quantities() {
        let e = SramConfig::new(128, 10, 4, 16).unwrap();
        assert_eq!(e.stack(), 2);
        assert_eq!(e.words_per_partition(), 32);
        assert_eq!(e.addr_bits(), 7);
        assert_eq!(e.bank_bits(), 2);
        assert_eq!(e.bank_entry_name().unwrap(), "brick_8t_16_10_x2");
        assert_eq!(e.design_name(), "sram_128x10_p4_b16");
        let d = SramConfig::new(128, 10, 1, 16).unwrap();
        assert_eq!(d.stack(), 8);
        assert_eq!(d.bank_bits(), 0);
    }

    #[test]
    fn generated_netlists_validate() {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        for (w, p) in [(16usize, 1usize), (32, 1), (128, 1), (128, 4)] {
            let cfg = SramConfig::new(w, 10, p, 16).unwrap();
            let n = generate(&tech, &cfg, &mut lib).unwrap();
            assert!(n.validate().is_ok(), "{w} words {p} partitions");
            assert_eq!(n.primary_outputs().len(), 10);
            // One macro per partition.
            let macros = n
                .cells()
                .iter()
                .filter(|c| matches!(c.kind, lim_rtl::CellKind::Macro { .. }))
                .count();
            assert_eq!(macros, p);
        }
        // Library was populated with the needed entries.
        assert!(lib.get("brick_8t_16_10_x8").is_ok());
        assert!(lib.get("brick_8t_16_10_x2").is_ok());
    }

    #[test]
    fn partitioned_has_more_logic_area() {
        // Banking pays in periphery: per-bank write drivers, output
        // buffers and the read mux outweigh the narrower local decode.
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let d = generate(&tech, &SramConfig::new(128, 10, 1, 16).unwrap(), &mut lib).unwrap();
        let e = generate(&tech, &SramConfig::new(128, 10, 4, 16).unwrap(), &mut lib).unwrap();
        assert!(e.stdcell_area(&tech) > d.stdcell_area(&tech));
    }
}
