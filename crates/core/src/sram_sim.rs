//! Functional co-simulation of generated SRAM netlists.
//!
//! The gate-level simulator of `lim-rtl` evaluates the synthesized
//! periphery (decoders, bank enables, output mux) but leaves brick macros
//! to their library models. This module closes the loop: a behavioural
//! bank model watches each macro's decoded-wordline and write-data pins,
//! keeps the array contents, and drives the macro's outputs — so a whole
//! generated SRAM can be exercised with write/read transactions through
//! the *real* synthesized logic. This is the verification step a
//! downstream user runs before trusting a generated smart memory.

use crate::error::LimError;
use crate::sram::SramConfig;
use lim_rtl::{CellKind, NetId, Netlist, Simulator};

/// One bank macro's behavioural state and pin map.
#[derive(Debug, Clone)]
struct BankModel {
    /// Words stored by this bank.
    words: Vec<u64>,
    /// Read decoded-wordline input nets, word order.
    rdwl: Vec<NetId>,
    /// Write decoded-wordline input nets.
    wdwl: Vec<NetId>,
    /// Write-data input nets (LSB first).
    wbl: Vec<NetId>,
    /// Output nets (LSB first).
    outputs: Vec<NetId>,
    /// Registered read in flight (value appears after the edge, like the
    /// clocked brick).
    pending_read: Option<u64>,
}

/// A generated SRAM netlist paired with behavioural banks, ready for
/// transactions.
#[derive(Debug)]
pub struct SramTestbench<'n> {
    config: SramConfig,
    netlist: &'n Netlist,
    sim: Simulator<'n>,
    banks: Vec<BankModel>,
}

impl<'n> SramTestbench<'n> {
    /// Binds the behavioural banks to the macros of `netlist` (which must
    /// have been produced by [`crate::sram::generate`] for `config`).
    ///
    /// # Errors
    ///
    /// Returns [`LimError::BadConfig`] when the netlist's macro population
    /// does not match the configuration; propagates simulator setup
    /// failures.
    pub fn new(config: SramConfig, netlist: &'n Netlist) -> Result<Self, LimError> {
        let sim = Simulator::new(netlist)?;
        let wpp = config.words_per_partition();
        let mut banks = Vec::new();
        for cell in netlist.cells() {
            if let CellKind::Macro { .. } = &cell.kind {
                // Pin layout from sram::generate: clk, en, rdwl[wpp],
                // wdwl[wpp], wbl[bits].
                let expected = 2 + 2 * wpp + config.bits();
                if cell.inputs.len() != expected {
                    return Err(LimError::BadConfig {
                        reason: format!(
                            "macro {} has {} pins, expected {expected}",
                            cell.name,
                            cell.inputs.len()
                        ),
                    });
                }
                banks.push(BankModel {
                    words: vec![0; wpp],
                    rdwl: cell.inputs[2..2 + wpp].to_vec(),
                    wdwl: cell.inputs[2 + wpp..2 + 2 * wpp].to_vec(),
                    wbl: cell.inputs[2 + 2 * wpp..].to_vec(),
                    outputs: cell.outputs.clone(),
                    pending_read: None,
                });
            }
        }
        if banks.len() != config.partitions() {
            return Err(LimError::BadConfig {
                reason: format!(
                    "netlist has {} macros, config wants {}",
                    banks.len(),
                    config.partitions()
                ),
            });
        }
        Ok(SramTestbench {
            config,
            netlist,
            sim,
            banks,
        })
    }

    fn input_vector(&self, raddr: usize, waddr: usize, we: bool, din: u64) -> Vec<bool> {
        let ab = self.config.addr_bits();
        let mut v = Vec::with_capacity(2 * ab + 1 + self.config.bits());
        for b in 0..ab {
            v.push((raddr >> b) & 1 == 1);
        }
        for b in 0..ab {
            v.push((waddr >> b) & 1 == 1);
        }
        v.push(we);
        for b in 0..self.config.bits() {
            v.push((din >> b) & 1 == 1);
        }
        v
    }

    /// Runs one clock cycle: optionally writing `din` to `waddr` while
    /// reading `raddr`; returns the read data observed at `dout` (the
    /// value launched by the previous cycle's read, like real silicon).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn cycle(
        &mut self,
        raddr: usize,
        waddr: usize,
        we: bool,
        din: u64,
    ) -> Result<u64, LimError> {
        let inputs = self.input_vector(raddr, waddr, we, din);
        // Settle combinational logic so the decoded wordlines and write
        // data at each macro reflect this cycle's address.
        self.sim.eval(&inputs)?;

        // Behavioural bank edge: capture writes and launch reads.
        for bank in &mut self.banks {
            let mut write_word: Option<usize> = None;
            for (w, &net) in bank.wdwl.iter().enumerate() {
                if self.sim.value(net) {
                    write_word = Some(w);
                }
            }
            if let Some(w) = write_word {
                let mut data = 0u64;
                for (b, &net) in bank.wbl.iter().enumerate() {
                    data |= (self.sim.value(net) as u64) << b;
                }
                bank.words[w] = data;
            }
            let mut read_word: Option<usize> = None;
            for (w, &net) in bank.rdwl.iter().enumerate() {
                if self.sim.value(net) {
                    read_word = Some(w);
                }
            }
            bank.pending_read = read_word.map(|w| bank.words[w]);
        }

        // Drive macro outputs with the launched read data, then clock the
        // synthesized logic (output mux select registers etc.).
        for bank in &self.banks {
            let data = bank.pending_read.unwrap_or(0);
            for (b, &net) in bank.outputs.iter().enumerate() {
                self.sim.force_net(net, (data >> b) & 1 == 1);
            }
        }
        self.sim.step(&inputs)?;

        // Observe dout.
        let mut dout = 0u64;
        for (b, &net) in self.netlist.primary_outputs().iter().enumerate() {
            dout |= (self.sim.value(net) as u64) << b;
        }
        Ok(dout)
    }

    /// Convenience: write `din` to `addr` (read side parked at 0).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn write(&mut self, addr: usize, din: u64) -> Result<(), LimError> {
        self.cycle(0, addr, true, din)?;
        Ok(())
    }

    /// Convenience: read `addr` (two cycles: launch, then capture).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn read(&mut self, addr: usize) -> Result<u64, LimError> {
        self.cycle(addr, 0, false, 0)?;
        // The data is launched; a second cycle with the same address
        // propagates it through the registered output mux.
        self.cycle(addr, 0, false, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram;
    use lim_brick::BrickLibrary;
    use lim_tech::Technology;

    fn bench_for(words: usize, partitions: usize) -> (SramConfig, Netlist) {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let cfg = SramConfig::new(words, 10, partitions, 16).unwrap();
        let n = sram::generate(&tech, &cfg, &mut lib).unwrap();
        (cfg, n)
    }

    #[test]
    fn write_then_read_back_single_bank() {
        let (cfg, n) = bench_for(32, 1);
        let mut tb = SramTestbench::new(cfg, &n).unwrap();
        tb.write(5, 0b10_1101_0011 & 0x3ff).unwrap();
        tb.write(17, 0x2aa).unwrap();
        assert_eq!(tb.read(5).unwrap(), 0b10_1101_0011 & 0x3ff);
        assert_eq!(tb.read(17).unwrap(), 0x2aa);
        // Unwritten location reads zero.
        assert_eq!(tb.read(3).unwrap(), 0);
    }

    #[test]
    fn partitioned_sram_reads_through_the_bank_mux() {
        let (cfg, n) = bench_for(128, 4);
        let mut tb = SramTestbench::new(cfg, &n).unwrap();
        // One address in every bank.
        for (i, addr) in [2usize, 40, 70, 100].iter().enumerate() {
            tb.write(*addr, (0x111 * (i as u64 + 1)) & 0x3ff).unwrap();
        }
        for (i, addr) in [2usize, 40, 70, 100].iter().enumerate() {
            assert_eq!(
                tb.read(*addr).unwrap(),
                (0x111 * (i as u64 + 1)) & 0x3ff,
                "bank {i}"
            );
        }
    }

    #[test]
    fn writes_do_not_alias_across_banks() {
        let (cfg, n) = bench_for(128, 4);
        let mut tb = SramTestbench::new(cfg, &n).unwrap();
        // Same local offset in all four banks: distinct values survive.
        for bank in 0..4usize {
            tb.write(bank * 32 + 7, 0x100 + bank as u64).unwrap();
        }
        for bank in 0..4usize {
            assert_eq!(tb.read(bank * 32 + 7).unwrap(), 0x100 + bank as u64);
        }
    }

    #[test]
    fn simultaneous_read_write_different_addresses() {
        let (cfg, n) = bench_for(32, 1);
        let mut tb = SramTestbench::new(cfg, &n).unwrap();
        tb.write(9, 0x155).unwrap();
        // Read 9 while writing 10.
        tb.cycle(9, 10, true, 0x2bb).unwrap();
        let got = tb.cycle(9, 0, false, 0).unwrap();
        assert_eq!(got, 0x155);
        assert_eq!(tb.read(10).unwrap(), 0x2bb);
    }

    #[test]
    fn mismatched_netlist_rejected() {
        let (_, n32) = bench_for(32, 1);
        let cfg128 = SramConfig::new(128, 10, 4, 16).unwrap();
        assert!(matches!(
            SramTestbench::new(cfg128, &n32),
            Err(LimError::BadConfig { .. })
        ));
    }
}
