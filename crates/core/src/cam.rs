//! CAM smart-memory generation (paper Fig. 5).
//!
//! A horizontal CAM block stores keys in a CAM brick, detects matches in a
//! single cycle, priority-decodes the match lines to address a companion
//! scratch-pad SRAM brick, and integrates a multiply-and-add block with a
//! write-back driver. A one-hot sequencer (instead of a decoder) walks
//! entries when draining results. This module generates both the single
//! CAM block netlist and the full SpGEMM cores (LiM and heap baseline)
//! used for the paper's chip-level comparison.

use crate::error::LimError;
use lim_brick::{BitcellKind, BrickLibrary, BrickSpec};
use lim_rtl::generators::or_tree;
use lim_rtl::{NetId, Netlist, StdCellKind};
use lim_tech::Technology;

/// Configuration of one horizontal CAM block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CamConfig {
    /// CAM entries (rows).
    pub entries: usize,
    /// Key width (row-index bits; 10 in the paper).
    pub key_bits: usize,
    /// Value width stored in the companion SRAM.
    pub data_bits: usize,
}

impl CamConfig {
    /// The paper's SpGEMM operating point: 16 entries of 10-bit keys and
    /// 10-bit values.
    pub fn spgemm_paper() -> Self {
        CamConfig {
            entries: 16,
            key_bits: 10,
            data_bits: 10,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LimError::BadConfig`] for zero dimensions or more than
    /// 256 entries.
    pub fn validate(&self) -> Result<(), LimError> {
        if self.entries == 0 || self.key_bits == 0 || self.data_bits == 0 {
            return Err(LimError::BadConfig {
                reason: "CAM dimensions must be non-zero".into(),
            });
        }
        if self.entries > 256 {
            return Err(LimError::BadConfig {
                reason: format!("{} CAM entries exceed the supported 256", self.entries),
            });
        }
        Ok(())
    }

    /// CAM brick spec (keys).
    ///
    /// # Errors
    ///
    /// Propagates brick validation.
    pub fn cam_spec(&self) -> Result<BrickSpec, LimError> {
        Ok(BrickSpec::new(BitcellKind::Cam, self.entries, self.key_bits)?)
    }

    /// Companion scratch-pad SRAM brick spec (values).
    ///
    /// # Errors
    ///
    /// Propagates brick validation.
    pub fn sram_spec(&self) -> Result<BrickSpec, LimError> {
        Ok(BrickSpec::new(
            BitcellKind::Sram8T,
            self.entries,
            self.data_bits,
        )?)
    }
}

/// Log-depth priority decode over match lines: a parallel-prefix OR
/// network computes `any[i] = ml[0] | … | ml[i]`, then
/// `sel[i] = ml[i] & !any[i−1]` — lowest index wins, in `O(log n)` logic
/// levels instead of a serial chain (the mismatch-detection block of
/// Fig. 5, built the way a real design would).
///
/// Returns `(grants, hit)`.
fn priority_decode(
    n: &mut Netlist,
    mls: &[NetId],
    label: &str,
) -> Result<(Vec<NetId>, NetId), LimError> {
    let count = mls.len();
    // Parallel-prefix OR (Kogge–Stone shape).
    let mut any: Vec<NetId> = mls.to_vec();
    let mut span = 1usize;
    let mut level = 0usize;
    while span < count {
        let mut next = any.clone();
        for i in span..count {
            next[i] = n.add_gate(
                StdCellKind::Or2,
                1.0,
                &[any[i], any[i - span]],
                format!("{label}_pfx{level}_{i}"),
            )?;
        }
        any = next;
        span *= 2;
        level += 1;
    }
    let mut grants = Vec::with_capacity(count);
    for (i, &ml) in mls.iter().enumerate() {
        let g = if i == 0 {
            n.add_gate(StdCellKind::Buf, 1.0, &[ml], format!("{label}_sel0"))?
        } else {
            let blocked = n.add_gate(
                StdCellKind::Inv,
                1.0,
                &[any[i - 1]],
                format!("{label}_nblk{i}"),
            )?;
            n.add_gate(
                StdCellKind::And2,
                1.0,
                &[ml, blocked],
                format!("{label}_sel{i}"),
            )?
        };
        grants.push(g);
    }
    Ok((grants, any[count - 1]))
}

/// Ensures `library` holds the CAM and scratch-pad entries for `config`,
/// returning their names.
fn ensure_entries(
    tech: &Technology,
    config: &CamConfig,
    library: &mut BrickLibrary,
) -> Result<(String, String), LimError> {
    let cam_spec = config.cam_spec()?;
    let sram_spec = config.sram_spec()?;
    let cam_name = format!("{}_x1", cam_spec.instance_name());
    let sram_name = format!("{}_x1", sram_spec.instance_name());
    library.get_or_insert(tech, &cam_spec, 1)?;
    library.get_or_insert(tech, &sram_spec, 1)?;
    Ok((cam_name, sram_name))
}

/// Generates a single horizontal CAM block netlist.
///
/// Inputs: `clk`, `search[key_bits]`, `en`. Outputs: `hit`, plus the
/// priority-decoded entry select `sel[entries]`.
///
/// # Errors
///
/// Propagates configuration, brick and netlist errors.
pub fn generate_cam_block(
    tech: &Technology,
    config: &CamConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    config.validate()?;
    let (cam_name, _) = ensure_entries(tech, config, library)?;

    let mut n = Netlist::new(format!("hcam_{}x{}", config.entries, config.key_bits));
    let clk = n.add_clock("clk");
    let en = n.add_input("en");
    let search: Vec<NetId> = (0..config.key_bits)
        .map(|i| n.add_input(format!("search[{i}]")))
        .collect();

    // Search register: the key is launched into the CAM on the clock.
    let search_q: Vec<NetId> = search
        .iter()
        .enumerate()
        .map(|(i, &s)| n.add_dff(s, 1.0, format!("search_q[{i}]")))
        .collect();

    // CAM macro: match lines out.
    let mut macro_inputs = vec![clk, en];
    macro_inputs.extend(&search_q);
    let match_lines = n.add_macro(
        "u_cam",
        cam_name,
        &macro_inputs,
        config.entries,
        "ml",
    );

    // Mismatch-detection block: log-depth priority decode of the match
    // lines (acts as the scratch-pad's address when a match exists).
    let (grants, any_hit) = priority_decode(&mut n, &match_lines, "pd")?;
    for &g in &grants {
        n.mark_output(g);
    }
    let hit = n.add_gate(StdCellKind::Buf, 2.0, &[any_hit], "hit")?;
    n.mark_output(hit);

    n.validate()?;
    Ok(n)
}

/// Configuration of a full SpGEMM compute core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpgemmCoreConfig {
    /// Horizontal CAM count (the sub-block column count N; 32 in the
    /// paper).
    pub n_columns: usize,
    /// Per-column CAM configuration.
    pub cam: CamConfig,
}

impl SpgemmCoreConfig {
    /// The paper's chip: 32 horizontal CAMs of 16x10 b plus one vertical
    /// CAM with 32 entries.
    pub fn paper() -> Self {
        SpgemmCoreConfig {
            n_columns: 32,
            cam: CamConfig::spgemm_paper(),
        }
    }
}

/// Builds one multiply-add lane: a pipelined carry-save array multiplier
/// (truncated to `data_bits`, the fixed-point datapath of the
/// accelerators) between registered operands. Each row is one full-adder
/// level deep and registered — the multiplier is fully retimed, as both
/// accelerator datapaths tolerate latency. Returns the merged product
/// bits.
fn mac_lane(
    n: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    label: &str,
) -> Result<Vec<NetId>, LimError> {
    let bits = a.len();
    let zero = n.add_tie(false, format!("{label}_zero"));
    // Carry-save state at absolute bit weights 0..bits.
    let mut s: Vec<NetId> = vec![zero; bits];
    let mut c: Vec<NetId> = vec![zero; bits];
    for (j, &b_j) in b.iter().enumerate().take(bits) {
        let mut s_new = s.clone();
        let mut c_new = vec![zero; bits];
        for (i, &a_i) in a.iter().enumerate().take(bits - j) {
            let w = i + j;
            let pp = n.add_gate(
                StdCellKind::And2,
                1.0,
                &[a_i, b_j],
                format!("{label}_pp{j}_{i}"),
            )?;
            if j == 0 {
                s_new[w] = pp;
            } else {
                s_new[w] = n.add_gate(
                    StdCellKind::FaSum,
                    1.0,
                    &[pp, s[w], c[w]],
                    format!("{label}_s{j}_{w}"),
                )?;
                if w + 1 < bits {
                    c_new[w + 1] = n.add_gate(
                        StdCellKind::FaCarry,
                        1.0,
                        &[pp, s[w], c[w]],
                        format!("{label}_c{j}_{w}"),
                    )?;
                }
            }
        }
        // Register the carry-save state between rows.
        if j + 1 < bits {
            s = s_new
                .iter()
                .enumerate()
                .map(|(w, &x)| n.add_dff(x, 1.0, format!("{label}_sq{j}_{w}")))
                .collect();
            c = c_new
                .iter()
                .enumerate()
                .map(|(w, &x)| n.add_dff(x, 1.0, format!("{label}_cq{j}_{w}")))
                .collect();
        } else {
            s = s_new;
            c = c_new;
        }
    }
    // Final vector merge: ripple-add the registered sum and carry vectors.
    let s_q: Vec<NetId> = s
        .iter()
        .enumerate()
        .map(|(w, &x)| n.add_dff(x, 1.0, format!("{label}_msq{w}")))
        .collect();
    let c_q: Vec<NetId> = c
        .iter()
        .enumerate()
        .map(|(w, &x)| n.add_dff(x, 1.0, format!("{label}_mcq{w}")))
        .collect();
    let mut carry = zero;
    let mut merged = Vec::with_capacity(bits);
    for w in 0..bits {
        merged.push(n.add_gate(
            StdCellKind::FaSum,
            1.0,
            &[s_q[w], c_q[w], carry],
            format!("{label}_m{w}"),
        )?);
        carry = n.add_gate(
            StdCellKind::FaCarry,
            1.0,
            &[s_q[w], c_q[w], carry],
            format!("{label}_mc{w}"),
        )?;
    }
    Ok(merged)
}

/// Generates the LiM CAM-SpGEMM compute core (paper Fig. 5): `n_columns`
/// horizontal CAM blocks, each with priority decode, a scratch-pad SRAM
/// brick and a multiply-add / write-back lane, plus one vertical CAM
/// activating columns by column-index match.
///
/// # Errors
///
/// Propagates configuration, brick and netlist errors.
pub fn generate_lim_spgemm_core(
    tech: &Technology,
    config: &SpgemmCoreConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    config.cam.validate()?;
    let (cam_name, sram_name) = ensure_entries(tech, &config.cam, library)?;
    // Vertical CAM: one entry per column, keyed by column index.
    let vcam_spec = BrickSpec::new(BitcellKind::Cam, config.n_columns, config.cam.key_bits)?;
    let vcam_name = format!("{}_x1", vcam_spec.instance_name());
    library.get_or_insert(tech, &vcam_spec, 1)?;

    let mut n = Netlist::new(format!("lim_spgemm_core_n{}", config.n_columns));
    let clk = n.add_clock("clk");
    let key: Vec<NetId> = (0..config.cam.key_bits)
        .map(|i| n.add_input(format!("row_idx[{i}]")))
        .collect();
    let col_key: Vec<NetId> = (0..config.cam.key_bits)
        .map(|i| n.add_input(format!("col_idx[{i}]")))
        .collect();
    let a_val: Vec<NetId> = (0..config.cam.data_bits)
        .map(|i| n.add_input(format!("a_val[{i}]")))
        .collect();
    let b_val: Vec<NetId> = (0..config.cam.data_bits)
        .map(|i| n.add_input(format!("b_val[{i}]")))
        .collect();

    // Vertical CAM: activates the horizontal CAM whose column index hits.
    let mut v_inputs = vec![clk];
    let en_all = n.add_tie(true, "en_all");
    v_inputs.push(en_all);
    let col_q: Vec<NetId> = col_key
        .iter()
        .enumerate()
        .map(|(i, &c)| n.add_dff(c, 1.0, format!("col_q[{i}]")))
        .collect();
    v_inputs.extend(&col_q);
    let col_hot = n.add_macro("u_vcam", vcam_name, &v_inputs, config.n_columns, "col_hot");

    // Registered operands shared by all lanes.
    let a_q: Vec<NetId> = a_val
        .iter()
        .enumerate()
        .map(|(i, &v)| n.add_dff(v, 1.0, format!("a_q[{i}]")))
        .collect();
    let b_q: Vec<NetId> = b_val
        .iter()
        .enumerate()
        .map(|(i, &v)| n.add_dff(v, 1.0, format!("b_q[{i}]")))
        .collect();
    let key_q: Vec<NetId> = key
        .iter()
        .enumerate()
        .map(|(i, &v)| n.add_dff(v, 1.0, format!("key_q[{i}]")))
        .collect();

    for (c, &hot) in col_hot.iter().enumerate().take(config.n_columns) {
        // Horizontal CAM keyed by row index, enabled by the vertical hit.
        let mut inputs = vec![clk, hot];
        inputs.extend(&key_q);
        let mls = n.add_macro(
            format!("u_hcam{c}"),
            cam_name.clone(),
            &inputs,
            config.cam.entries,
            &format!("ml{c}"),
        );
        // Mismatch-detection / log-depth priority decode.
        let (grants, hit) = priority_decode(&mut n, &mls, &format!("c{c}"))?;

        // Scratch-pad SRAM addressed by the decoded match.
        let mut s_inputs = vec![clk, hit];
        s_inputs.extend(&grants);
        s_inputs.extend(&grants); // write side follows the same select
        s_inputs.extend(&a_q[..config.cam.data_bits.min(a_q.len())]);
        let stored = n.add_macro(
            format!("u_pad{c}"),
            sram_name.clone(),
            &s_inputs,
            config.cam.data_bits,
            &format!("pad{c}"),
        );

        // Multiply-and-add with write-back: new = stored + a*b.
        let prod = mac_lane(&mut n, &a_q, &b_q, &format!("mac{c}"))?;
        let mut carry = n.add_tie(false, format!("wb{c}_cin"));
        let mut wb = Vec::with_capacity(config.cam.data_bits);
        for i in 0..config.cam.data_bits {
            let s = n.add_gate(
                StdCellKind::FaSum,
                1.0,
                &[stored[i], prod[i], carry],
                format!("wb{c}_s{i}"),
            )?;
            carry = n.add_gate(
                StdCellKind::FaCarry,
                1.0,
                &[stored[i], prod[i], carry],
                format!("wb{c}_c{i}"),
            )?;
            wb.push(s);
        }
        // Write-back register (drives the pad's write port next cycle).
        for (i, &w) in wb.iter().enumerate() {
            let q = n.add_dff(w, 1.0, format!("wbq{c}_{i}"));
            n.mark_output(q);
        }
        n.mark_output(hit);
    }

    n.validate()?;
    Ok(n)
}

/// Generates the heap/FIFO-based non-LiM SpGEMM core: the same number of
/// merge ways, each with a plain SRAM FIFO brick, head comparators for the
/// multi-way merge, a winner-select tree and one shared multiply-add lane.
///
/// # Errors
///
/// Propagates configuration, brick and netlist errors.
pub fn generate_heap_spgemm_core(
    tech: &Technology,
    config: &SpgemmCoreConfig,
    library: &mut BrickLibrary,
) -> Result<Netlist, LimError> {
    config.cam.validate()?;
    let (_, sram_name) = ensure_entries(tech, &config.cam, library)?;

    let mut n = Netlist::new(format!("heap_spgemm_core_n{}", config.n_columns));
    let clk = n.add_clock("clk");
    let key_bits = config.cam.key_bits;
    let a_val: Vec<NetId> = (0..config.cam.data_bits)
        .map(|i| n.add_input(format!("a_val[{i}]")))
        .collect();
    let b_val: Vec<NetId> = (0..config.cam.data_bits)
        .map(|i| n.add_input(format!("b_val[{i}]")))
        .collect();
    let a_q: Vec<NetId> = a_val
        .iter()
        .enumerate()
        .map(|(i, &v)| n.add_dff(v, 1.0, format!("a_q[{i}]")))
        .collect();
    let b_q: Vec<NetId> = b_val
        .iter()
        .enumerate()
        .map(|(i, &v)| n.add_dff(v, 1.0, format!("b_q[{i}]")))
        .collect();

    // One FIFO way per column: SRAM brick + head register + shift-enable
    // FSM bit; heads feed a comparator tree that picks the minimum key.
    let mut head_keys: Vec<Vec<NetId>> = Vec::with_capacity(config.n_columns);
    for w in 0..config.n_columns {
        let en = n.add_input(format!("way_en[{w}]"));
        let mut s_inputs = vec![clk, en];
        // Head pointer: small ring of DFFs (sequencer-style).
        let mut ptr = Vec::with_capacity(config.cam.entries);
        let mut prev: Option<NetId> = None;
        for e in 0..config.cam.entries {
            let d = prev.unwrap_or(en);
            let q = n.add_dff(d, 1.0, format!("ptr{w}_{e}"));
            ptr.push(q);
            prev = Some(q);
        }
        s_inputs.extend(&ptr);
        s_inputs.extend(&ptr);
        s_inputs.extend(&a_q[..config.cam.data_bits.min(a_q.len())]);
        let head = n.add_macro(
            format!("u_fifo{w}"),
            sram_name.clone(),
            &s_inputs,
            key_bits,
            &format!("head{w}"),
        );
        head_keys.push(head);
    }

    // Min-select comparator tree over the way heads (key compare only; the
    // real minimum circuit also muxes, modeled by a mux per comparator).
    // Each tree level is pipelined: merge networks retile trivially into
    // registers, which is exactly why the FIFO baseline clocks faster than
    // the single-cycle CAM datapath — at the cost of shifting latency.
    let mut layer: Vec<Vec<NetId>> = head_keys;
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let pairs: Vec<(Vec<NetId>, Option<Vec<NetId>>)> = {
            let mut it = layer.into_iter();
            let mut v = Vec::new();
            while let Some(a) = it.next() {
                v.push((a, it.next()));
            }
            v
        };
        for (pi, (a, b)) in pairs.into_iter().enumerate() {
            match b {
                None => next.push(a),
                Some(b) => {
                    // a < b comparator: XNOR equality chain + borrow chain
                    // approximated by XOR/OR tree plus final select.
                    let diff: Vec<NetId> = (0..key_bits)
                        .map(|i| {
                            n.add_gate(
                                StdCellKind::Xor2,
                                1.0,
                                &[a[i], b[i]],
                                format!("cmpx_l{level}_{pi}_{i}"),
                            )
                        })
                        .collect::<Result<_, _>>()?;
                    let lt = or_tree(&mut n, &diff, &format!("cmp_l{level}_{pi}"))?;
                    let sel: Vec<NetId> = (0..key_bits)
                        .map(|i| {
                            let m = n.add_gate(
                                StdCellKind::Mux2,
                                1.0,
                                &[a[i], b[i], lt],
                                format!("min_l{level}_{pi}_{i}"),
                            )?;
                            // Pipeline register per level.
                            Ok(n.add_dff(m, 1.0, format!("minq_l{level}_{pi}_{i}")))
                        })
                        .collect::<Result<_, LimError>>()?;
                    next.push(sel);
                }
            }
        }
        layer = next;
        level += 1;
    }
    let min_key = layer.pop().expect("at least one way");

    // Shared multiply-add on the winning element; the product is
    // registered before the accumulate (another pipeline cut the
    // latency-tolerant baseline affords).
    let prod_raw = mac_lane(&mut n, &a_q, &b_q, "mac")?;
    let prod: Vec<NetId> = prod_raw
        .iter()
        .enumerate()
        .map(|(i, &p)| n.add_dff(p, 1.0, format!("prod_q[{i}]")))
        .collect();
    let mut carry = n.add_tie(false, "acc_cin");
    for i in 0..config.cam.data_bits {
        let s = n.add_gate(
            StdCellKind::FaSum,
            1.0,
            &[min_key[i % key_bits], prod[i], carry],
            format!("acc_s{i}"),
        )?;
        carry = n.add_gate(
            StdCellKind::FaCarry,
            1.0,
            &[min_key[i % key_bits], prod[i], carry],
            format!("acc_c{i}"),
        )?;
        let q = n.add_dff(s, 1.0, format!("acc_q[{i}]"));
        n.mark_output(q);
    }

    n.validate()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cam_block_generates_and_validates() {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let cfg = CamConfig::spgemm_paper();
        let n = generate_cam_block(&tech, &cfg, &mut lib).unwrap();
        assert!(n.validate().is_ok());
        // sel[entries] + hit outputs.
        assert_eq!(n.primary_outputs().len(), cfg.entries + 1);
        assert!(lib.get("brick_cam_16_10_x1").is_ok());
    }

    #[test]
    fn cam_config_validation() {
        let mut cfg = CamConfig::spgemm_paper();
        cfg.entries = 0;
        assert!(cfg.validate().is_err());
        cfg.entries = 512;
        assert!(cfg.validate().is_err());
        assert!(CamConfig::spgemm_paper().validate().is_ok());
    }

    #[test]
    fn lim_core_small_config() {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let cfg = SpgemmCoreConfig {
            n_columns: 4,
            cam: CamConfig {
                entries: 8,
                key_bits: 6,
                data_bits: 6,
            },
        };
        let n = generate_lim_spgemm_core(&tech, &cfg, &mut lib).unwrap();
        assert!(n.validate().is_ok());
        // 4 horizontal CAMs + 4 pads + 1 vertical CAM.
        let macros = n
            .cells()
            .iter()
            .filter(|c| matches!(c.kind, lim_rtl::CellKind::Macro { .. }))
            .count();
        assert_eq!(macros, 9);
    }

    #[test]
    fn heap_core_small_config() {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let cfg = SpgemmCoreConfig {
            n_columns: 4,
            cam: CamConfig {
                entries: 8,
                key_bits: 6,
                data_bits: 6,
            },
        };
        let n = generate_heap_spgemm_core(&tech, &cfg, &mut lib).unwrap();
        assert!(n.validate().is_ok());
        let macros = n
            .cells()
            .iter()
            .filter(|c| matches!(c.kind, lim_rtl::CellKind::Macro { .. }))
            .count();
        assert_eq!(macros, 4); // 4 FIFO ways, no CAMs
    }

    #[test]
    fn lim_core_uses_cam_bricks_heap_does_not() {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let cfg = SpgemmCoreConfig {
            n_columns: 2,
            cam: CamConfig {
                entries: 8,
                key_bits: 6,
                data_bits: 6,
            },
        };
        let lim = generate_lim_spgemm_core(&tech, &cfg, &mut lib).unwrap();
        let heap = generate_heap_spgemm_core(&tech, &cfg, &mut lib).unwrap();
        let uses_cam = |n: &Netlist| {
            n.cells().iter().any(|c| match &c.kind {
                lim_rtl::CellKind::Macro { lib_name } => lib_name.contains("cam"),
                _ => false,
            })
        };
        assert!(uses_cam(&lim));
        assert!(!uses_cam(&heap));
    }
}
