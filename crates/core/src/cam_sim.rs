//! Functional co-simulation of generated CAM blocks.
//!
//! Binds a behavioural CAM array (stored keys, single-cycle match) to the
//! macro inside a netlist from [`crate::cam::generate_cam_block`], and
//! drives search transactions through the *synthesized* mismatch-detect /
//! priority-decode logic — verifying the Fig. 5 periphery functionally,
//! the way `sram_sim` verifies the Fig. 3 periphery.

use crate::cam::CamConfig;
use crate::error::LimError;
use lim_rtl::{CellKind, NetId, Netlist, Simulator};

/// A generated CAM block plus behavioural storage.
#[derive(Debug)]
pub struct CamTestbench<'n> {
    config: CamConfig,
    sim: Simulator<'n>,
    /// Stored keys per entry (`None` = empty).
    keys: Vec<Option<u64>>,
    /// The macro's registered-search input nets (search_q, LSB first).
    search_q: Vec<NetId>,
    /// Match-line output nets, entry order.
    match_lines: Vec<NetId>,
    /// Primary-output order: sel[entries] then hit.
    n_outputs: usize,
}

impl<'n> CamTestbench<'n> {
    /// Binds to the single macro of a `generate_cam_block` netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LimError::BadConfig`] when the netlist shape does not
    /// match `config`.
    pub fn new(config: CamConfig, netlist: &'n Netlist) -> Result<Self, LimError> {
        config.validate()?;
        let sim = Simulator::new(netlist)?;
        let cam_cell = netlist
            .cells()
            .iter()
            .find(|c| matches!(c.kind, CellKind::Macro { .. }))
            .ok_or_else(|| LimError::BadConfig {
                reason: "netlist has no CAM macro".into(),
            })?;
        // Macro inputs: clk, en, search_q[key_bits].
        if cam_cell.inputs.len() != 2 + config.key_bits
            || cam_cell.outputs.len() != config.entries
        {
            return Err(LimError::BadConfig {
                reason: format!(
                    "macro shape {}in/{}out does not match config",
                    cam_cell.inputs.len(),
                    cam_cell.outputs.len()
                ),
            });
        }
        Ok(CamTestbench {
            config,
            sim,
            keys: vec![None; config.entries],
            search_q: cam_cell.inputs[2..].to_vec(),
            match_lines: cam_cell.outputs.clone(),
            n_outputs: netlist.primary_outputs().len(),
        })
    }

    /// Stores `key` at `entry` (the write path is host-side: the chip's
    /// write port belongs to the surrounding SpGEMM datapath).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn store(&mut self, entry: usize, key: u64) {
        self.keys[entry] = Some(key & ((1 << self.config.key_bits) - 1));
    }

    /// Clears an entry.
    pub fn clear(&mut self, entry: usize) {
        self.keys[entry] = None;
    }

    /// Searches for `key`: returns `(hit, one-hot select)` as produced by
    /// the synthesized priority decode.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn search(&mut self, key: u64) -> Result<(bool, Vec<bool>), LimError> {
        let masked = key & ((1 << self.config.key_bits) - 1);
        // Inputs after the clock: en, search[key_bits].
        let mut inputs = vec![true];
        for b in 0..self.config.key_bits {
            inputs.push((masked >> b) & 1 == 1);
        }
        // Edge 1: the search register captures the key.
        self.sim.step(&inputs)?;
        // The CAM behavioural model: compare the registered key against
        // storage and drive the match lines.
        let mut registered = 0u64;
        for (b, &net) in self.search_q.iter().enumerate() {
            registered |= (self.sim.value(net) as u64) << b;
        }
        for (entry, &ml) in self.match_lines.iter().enumerate() {
            let is_match = self.keys[entry] == Some(registered);
            self.sim.force_net(ml, is_match);
        }
        // Settle the priority logic.
        let outs = self.sim.eval(&inputs)?;
        debug_assert_eq!(outs.len(), self.n_outputs);
        let hit = outs[self.config.entries];
        Ok((hit, outs[..self.config.entries].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cam::generate_cam_block;
    use lim_brick::BrickLibrary;
    use lim_tech::Technology;

    fn bench() -> (CamConfig, Netlist) {
        let tech = Technology::cmos65();
        let mut lib = BrickLibrary::new();
        let cfg = CamConfig {
            entries: 8,
            key_bits: 6,
            data_bits: 6,
        };
        let n = generate_cam_block(&tech, &cfg, &mut lib).unwrap();
        (cfg, n)
    }

    #[test]
    fn hit_and_select_on_stored_keys() {
        let (cfg, n) = bench();
        let mut tb = CamTestbench::new(cfg, &n).unwrap();
        tb.store(2, 0b101010);
        tb.store(5, 0b000111);
        let (hit, sel) = tb.search(0b101010).unwrap();
        assert!(hit);
        assert_eq!(
            sel,
            (0..8).map(|i| i == 2).collect::<Vec<_>>(),
            "select must be one-hot at entry 2"
        );
        let (hit, sel) = tb.search(0b000111).unwrap();
        assert!(hit);
        assert!(sel[5]);
        assert_eq!(sel.iter().filter(|&&s| s).count(), 1);
    }

    #[test]
    fn miss_reports_no_hit_and_cold_select() {
        let (cfg, n) = bench();
        let mut tb = CamTestbench::new(cfg, &n).unwrap();
        tb.store(1, 0b111111);
        let (hit, sel) = tb.search(0b000001).unwrap();
        assert!(!hit);
        assert!(sel.iter().all(|&s| !s));
    }

    #[test]
    fn duplicate_keys_resolve_by_priority() {
        let (cfg, n) = bench();
        let mut tb = CamTestbench::new(cfg, &n).unwrap();
        tb.store(6, 0b010101);
        tb.store(3, 0b010101);
        let (hit, sel) = tb.search(0b010101).unwrap();
        assert!(hit);
        // Lowest index wins in the synthesized priority decode.
        assert!(sel[3]);
        assert!(!sel[6]);
        assert_eq!(sel.iter().filter(|&&s| s).count(), 1);
    }

    #[test]
    fn cleared_entries_stop_matching() {
        let (cfg, n) = bench();
        let mut tb = CamTestbench::new(cfg, &n).unwrap();
        tb.store(4, 0b001100);
        assert!(tb.search(0b001100).unwrap().0);
        tb.clear(4);
        assert!(!tb.search(0b001100).unwrap().0);
    }
}
