//! End-to-end RTL memory inference: behavioral Verilog in, brick-backed
//! smart memory plus a physical-flow report out.
//!
//! This is the glue between the `lim-rtl` frontend (parse → infer →
//! lower, which knows nothing about brick libraries) and the rest of the
//! stack: for every inferred memory it sweeps the caller's brick-depth
//! candidates through the analytic DSE estimator ([`crate::dse`]),
//! picks the decomposition minimizing the delay·energy·area product,
//! registers the winning bank entries in the flow's [`BrickLibrary`],
//! lowers the module, and drives the full [`LimFlow`] physical
//! synthesis. The whole path is deterministic: the DSE sweep, the
//! tie-break (smaller brick first) and the flow are all byte-stable
//! across `lim-par` worker counts.

use crate::dse;
use crate::error::LimError;
use crate::flow::{LimBlock, LimFlow};
use lim_brick::{BitcellKind, BrickSpec};
use lim_physical::power::MacroActivity;
use lim_rtl::infer::{infer, Inference};
use lim_rtl::smartmem::{lower, MemLowering};
use lim_rtl::{parse, verilog};
use lim_tech::units::{Femtojoules, Picoseconds, SquareMicrons};
use std::collections::BTreeMap;
use std::time::Duration;

/// Default brick-depth candidates when the caller passes none.
pub const DEFAULT_BRICK_WORDS: &[usize] = &[8, 16, 32, 64];

/// Deepest brick stack the decomposition sweep will consider (matches
/// the bound `dse::explore_partitioned` uses).
const MAX_STACK: usize = 64;

/// The DSE-chosen decomposition of one inferred memory.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Array name in the source.
    pub name: String,
    /// Words.
    pub words: usize,
    /// Word width in bits.
    pub bits: usize,
    /// Byte-enable lane widths (one full-word lane when not
    /// byte-enabled), ascending bit order.
    pub lane_bits: Vec<usize>,
    /// Chosen words-per-brick.
    pub brick_words: usize,
    /// Bricks stacked per lane column.
    pub stack: usize,
    /// Brick-library entry per lane.
    pub entry_names: Vec<String>,
    /// Estimated critical read path of the winning point (worst lane).
    pub delay: Picoseconds,
    /// Estimated read energy per access, summed over lanes.
    pub energy: Femtojoules,
    /// Estimated bank area, summed over lanes.
    pub area: SquareMicrons,
    /// How many brick-depth candidates tiled this memory.
    pub candidates: usize,
}

/// Wall-clock spent in each frontend stage (from the shared span
/// clock, valid whether or not obs collection is enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtlStageTimings {
    /// Source → behavioral IR.
    pub parse: Duration,
    /// IR → inference result.
    pub infer: Duration,
    /// Inference → structural netlist.
    pub lower: Duration,
}

/// Everything `rtl.infer` hands back for one source module.
#[derive(Debug, Clone)]
pub struct RtlInferReport {
    /// Module name from the source.
    pub module: String,
    /// Source lines consumed by the parser.
    pub parse_lines: usize,
    /// Per-memory decomposition choices, declaration order.
    pub memories: Vec<MemoryPlan>,
    /// The synthesized block (gate/macro counts + physical report).
    pub block: LimBlock,
    /// Structural Verilog of the lowered (pre-optimization) netlist.
    pub verilog: String,
    /// Frontend stage timings.
    pub timings: RtlStageTimings,
}

fn bad(reason: impl Into<String>) -> LimError {
    LimError::BadConfig {
        reason: reason.into(),
    }
}

/// Picks the brick decomposition for one memory: sweeps every candidate
/// depth that tiles it through the analytic estimator and keeps the
/// delay·energy·area minimum (ties to the shallower brick).
fn choose_decomposition(
    flow: &LimFlow,
    mem: &lim_rtl::InferredMemory,
    brick_options: &[usize],
) -> Result<MemoryPlan, LimError> {
    let lanes = mem.lanes();
    let lane_bits: Vec<usize> = lanes.iter().map(|l| l.width()).collect();
    let candidates: Vec<usize> = brick_options
        .iter()
        .copied()
        .filter(|&bw| {
            bw > 0
                && mem.words.is_multiple_of(bw)
                && (1..=MAX_STACK).contains(&(mem.words / bw))
                && BrickSpec::new(BitcellKind::Sram8T, bw, *lane_bits.iter().max().unwrap())
                    .is_ok()
        })
        .collect();
    if candidates.is_empty() {
        return Err(bad(format!(
            "no brick depth in {brick_options:?} tiles memory `{}` ({} words, stack ≤ {MAX_STACK})",
            mem.name, mem.words
        )));
    }

    // One sweep per distinct lane width; points are keyed (bw, width).
    let mut widths: Vec<usize> = lane_bits.clone();
    widths.sort_unstable();
    widths.dedup();
    let memories: Vec<(usize, usize)> = widths.iter().map(|&w| (mem.words, w)).collect();
    let points = dse::explore(flow.technology(), &memories, &candidates)?;
    let point = |bw: usize, bits: usize| {
        points
            .iter()
            .find(|p| p.brick_words == bw && p.bits == bits)
            .expect("sweep covers the (bw, width) grid")
    };

    // Score a candidate over all lanes: the slowest lane bounds delay,
    // energy and area pay per lane.
    let mut best: Option<(f64, usize)> = None;
    for &bw in &candidates {
        let delay = lane_bits
            .iter()
            .map(|&w| point(bw, w).delay.value())
            .fold(0.0f64, f64::max);
        let energy: f64 = lane_bits.iter().map(|&w| point(bw, w).energy.value()).sum();
        let area: f64 = lane_bits.iter().map(|&w| point(bw, w).area.value()).sum();
        let score = delay * energy * area;
        let better = match best {
            None => true,
            // Strict `<`: equal scores keep the earlier (smaller) depth.
            Some((s, _)) => score < s,
        };
        if better {
            best = Some((score, bw));
        }
    }
    let (_, brick_words) = best.expect("candidates is non-empty");
    let stack = mem.words / brick_words;
    let entry_names: Vec<String> = lane_bits
        .iter()
        .map(|&w| {
            Ok(format!(
                "{}_x{stack}",
                BrickSpec::new(BitcellKind::Sram8T, brick_words, w)?.instance_name()
            ))
        })
        .collect::<Result<_, LimError>>()?;
    let delay = lane_bits
        .iter()
        .map(|&w| point(brick_words, w).delay.value())
        .fold(0.0f64, f64::max);
    let energy: f64 = lane_bits
        .iter()
        .map(|&w| point(brick_words, w).energy.value())
        .sum();
    let area: f64 = lane_bits
        .iter()
        .map(|&w| point(brick_words, w).area.value())
        .sum();
    Ok(MemoryPlan {
        name: mem.name.clone(),
        words: mem.words,
        bits: mem.bits,
        lane_bits,
        brick_words,
        stack,
        entry_names,
        delay: Picoseconds::new(delay),
        energy: Femtojoules::new(energy),
        area: SquareMicrons::new(area),
        candidates: candidates.len(),
    })
}

/// Parses behavioral Verilog, infers its memories, chooses a brick
/// decomposition per memory via DSE, lowers to a structural netlist and
/// runs the full physical flow.
///
/// `brick_options` lists the words-per-brick candidates (empty →
/// [`DEFAULT_BRICK_WORDS`]). The flow's brick library picks up every
/// bank entry the lowering instantiates, so a resident server can
/// snapshot/absorb it around the call exactly like `flow.run`.
///
/// # Errors
///
/// Returns [`LimError::BadConfig`] on parse errors (message carries the
/// `line:col` diagnostic), when any array is rejected by inference
/// (message lists every rejection), when no memory is inferred, or when
/// no brick candidate tiles a memory; propagates lowering and physical
/// synthesis failures.
pub fn infer_and_synthesize(
    flow: &mut LimFlow,
    source: &str,
    brick_options: &[usize],
) -> Result<RtlInferReport, LimError> {
    let _span = lim_obs::Span::enter("rtl_infer");
    let brick_options = if brick_options.is_empty() {
        DEFAULT_BRICK_WORDS
    } else {
        brick_options
    };

    let (parsed, parse_elapsed) = lim_obs::timed("rtl_parse", || parse::parse(source));
    let module = match parsed {
        Ok(m) => m,
        Err(e) => return Err(bad(format!("parse error at {e}"))),
    };
    lim_obs::counter_add("rtl.parse_lines", module.source_lines as u64);

    let (inference, infer_elapsed): (Inference, Duration) =
        lim_obs::timed("rtl_infer_pass", || infer(&module));
    lim_obs::counter_add("rtl.infer.memories", inference.memories.len() as u64);
    lim_obs::counter_add("rtl.infer.rejected", inference.rejected.len() as u64);
    if !inference.rejected.is_empty() {
        let mut lines: Vec<String> =
            inference.rejected.iter().map(|r| r.to_string()).collect();
        lines.sort();
        return Err(bad(format!(
            "{} array(s) not inferable: {}",
            inference.rejected.len(),
            lines.join("; ")
        )));
    }
    if inference.memories.is_empty() {
        return Err(bad(format!(
            "module `{}` declares no inferable memory array",
            module.name
        )));
    }

    // Per-memory decomposition choice + library registration.
    let mut plans_by_mem: BTreeMap<String, MemLowering> = BTreeMap::new();
    let mut plans: Vec<MemoryPlan> = Vec::with_capacity(inference.memories.len());
    for mem in &inference.memories {
        let plan = choose_decomposition(flow, mem, brick_options)?;
        let tech = flow.technology().clone();
        for (&w, _) in plan.lane_bits.iter().zip(&plan.entry_names) {
            let spec = BrickSpec::new(BitcellKind::Sram8T, plan.brick_words, w)?;
            flow.library_mut().get_or_insert(&tech, &spec, plan.stack)?;
        }
        lim_obs::gauge_set(&format!("rtl.infer.{}.words", mem.name), plan.words as f64);
        lim_obs::gauge_set(&format!("rtl.infer.{}.bits", mem.name), plan.bits as f64);
        lim_obs::gauge_set(
            &format!("rtl.infer.{}.brick_words", mem.name),
            plan.brick_words as f64,
        );
        lim_obs::gauge_set(&format!("rtl.infer.{}.stack", mem.name), plan.stack as f64);
        plans_by_mem.insert(
            mem.name.clone(),
            MemLowering {
                brick_words: plan.brick_words,
                entry_names: plan.entry_names.clone(),
            },
        );
        plans.push(plan);
    }

    let (lowered, lower_elapsed) =
        lim_obs::timed("rtl_lower", || lower(&module, &inference, &plans_by_mem));
    let netlist = lowered?;
    let structural = verilog::emit(&netlist);

    // Every lane macro is active each cycle: reads launch every edge,
    // writes land only when the enable fires — model the common
    // read-dominated duty cycle the SRAM path uses for one bank.
    let saved_activity = flow.options.macro_activity;
    flow.options.macro_activity = MacroActivity {
        read_rate: 1.0,
        write_rate: 0.0,
        match_rate: 0.0,
    };
    let block = flow.synthesize(&netlist);
    flow.options.macro_activity = saved_activity;
    let block = block?;

    Ok(RtlInferReport {
        module: module.name.clone(),
        parse_lines: module.source_lines,
        memories: plans,
        block,
        verilog: structural,
        timings: RtlStageTimings {
            parse: parse_elapsed,
            infer: infer_elapsed,
            lower: lower_elapsed,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
module spram (
  input wire clk,
  input wire we,
  input wire [4:0] waddr,
  input wire [4:0] raddr,
  input wire [9:0] din,
  output reg [9:0] dout
);
  reg [9:0] mem [31:0];
  always @(posedge clk) begin
    if (we)
      mem[waddr] <= din;
    dout <= mem[raddr];
  end
endmodule
";

    #[test]
    fn end_to_end_single_port() {
        let mut flow = LimFlow::cmos65();
        let report = infer_and_synthesize(&mut flow, SRC, &[8, 16, 32]).unwrap();
        assert_eq!(report.module, "spram");
        assert_eq!(report.memories.len(), 1);
        let m = &report.memories[0];
        assert_eq!(m.words, 32);
        assert_eq!(m.bits, 10);
        assert_eq!(m.candidates, 3);
        assert_eq!(m.stack * m.brick_words, 32);
        assert_eq!(m.entry_names.len(), 1);
        assert!(flow.library().get(&m.entry_names[0]).is_ok());
        assert!(report.block.report.fmax.value() > 0.0);
        assert!(report.block.macro_count == 1);
        assert!(report.verilog.contains("module spram ("));
        assert!(report.parse_lines >= 15);
    }

    #[test]
    fn choice_is_deterministic_and_scores_minimum() {
        let mut flow = LimFlow::cmos65();
        let a = infer_and_synthesize(&mut flow, SRC, &[8, 16, 32]).unwrap();
        let mut flow2 = LimFlow::cmos65();
        let b = infer_and_synthesize(&mut flow2, SRC, &[32, 16, 8]).unwrap();
        // Candidate order must not change the winner.
        assert_eq!(a.memories[0].brick_words, b.memories[0].brick_words);
        assert_eq!(
            a.block.report.min_period, b.block.report.min_period,
            "physical result must be reproducible"
        );
    }

    #[test]
    fn parse_and_inference_errors_surface_as_bad_config() {
        let mut flow = LimFlow::cmos65();
        let err = infer_and_synthesize(&mut flow, "module busted", &[16]).unwrap_err();
        assert!(matches!(err, LimError::BadConfig { .. }));
        assert!(err.to_string().contains("parse error"), "{err}");

        let async_read = "\
module ar (
  input clk,
  input we,
  input [1:0] waddr,
  input [1:0] raddr,
  input [3:0] din,
  output [3:0] q
);
  reg [3:0] m [3:0];
  always @(posedge clk)
    if (we) m[waddr] <= din;
  assign q = m[raddr];
endmodule
";
        let err = infer_and_synthesize(&mut flow, async_read, &[2]).unwrap_err();
        assert!(err.to_string().contains("async-read-port"), "{err}");
        // Rejections carry line:col.
        assert!(err.to_string().contains("12:"), "{err}");
    }

    #[test]
    fn untileable_memory_is_rejected() {
        let mut flow = LimFlow::cmos65();
        let err = infer_and_synthesize(&mut flow, SRC, &[7]).unwrap_err();
        assert!(matches!(err, LimError::BadConfig { .. }));
        assert!(err.to_string().contains("tiles memory"), "{err}");
    }
}
