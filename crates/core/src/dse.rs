//! Rapid design-space exploration (paper Fig. 4c).
//!
//! "Performance, energy, and area consumption of these partitions are
//! estimated within seconds by our library generation tool" — the DSE
//! engine sweeps brick choices for a set of memory sizes using only the
//! analytic estimator (no physical synthesis), then extracts the pareto
//! front over (delay, energy, area).

use crate::error::LimError;
use lim_brick::{BitcellKind, BrickCompiler, BrickSpec};
use lim_tech::units::{Femtojoules, Picoseconds, SquareMicrons};
use lim_tech::Technology;
use std::fmt;
use std::time::Duration;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Human-readable label, e.g. `128x16 @ 16x16 x8`.
    pub label: String,
    /// Total memory words.
    pub words: usize,
    /// Word width.
    pub bits: usize,
    /// Words per brick.
    pub brick_words: usize,
    /// Stack count.
    pub stack: usize,
    /// Estimated critical read path.
    pub delay: Picoseconds,
    /// Estimated read energy per access.
    pub energy: Femtojoules,
    /// Estimated bank area.
    pub area: SquareMicrons,
    /// Wall-clock time spent evaluating this point, from the shared
    /// span clock ([`lim_obs::timed`]); valid whether or not obs
    /// collection is enabled.
    pub elapsed: Duration,
}

impl fmt::Display for DsePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} ps, {:.1} pJ, {:.0} µm²",
            self.label,
            self.delay.value(),
            self.energy.to_picojoules().value(),
            self.area.value()
        )
    }
}

/// Sweeps every `(memory size, brick choice)` combination: for each total
/// `words x bits` memory and brick depth in `brick_word_options`, builds a
/// single-partition bank of stacked bricks and estimates it.
///
/// The Fig. 4c instance is
/// `explore(tech, &[(128, 8), (128, 16), (128, 32)], &[16, 32, 64])`,
/// producing nine points.
///
/// # Errors
///
/// Returns [`LimError::BadConfig`] when a brick depth does not divide a
/// memory size; propagates estimator failures.
pub fn explore(
    tech: &Technology,
    memories: &[(usize, usize)],
    brick_word_options: &[usize],
) -> Result<Vec<DsePoint>, LimError> {
    let _span = lim_obs::Span::enter("dse_explore");
    // Validate the whole grid up front so parallel evaluation only ever
    // sees well-formed combinations.
    let mut combos = Vec::with_capacity(memories.len() * brick_word_options.len());
    for &(words, bits) in memories {
        for &bw in brick_word_options {
            if bw == 0 || words % bw != 0 {
                return Err(LimError::BadConfig {
                    reason: format!("brick depth {bw} does not divide {words} words"),
                });
            }
            combos.push((words, bits, bw));
        }
    }
    let compiler = BrickCompiler::new(tech);
    // Each point is independent; fan across the pool. Ordering (and
    // therefore every downstream pareto/normalization result) is
    // identical for any worker count.
    lim_par::par_map(combos, |(words, bits, bw)| -> Result<DsePoint, LimError> {
        let stack = words / bw;
        let spec = BrickSpec::new(BitcellKind::Sram8T, bw, bits)?;
        let (est, elapsed) = lim_obs::timed("dse_point", || {
            let brick = compiler.compile(&spec)?;
            brick.estimate_bank(stack)
        });
        let est = est?;
        Ok(DsePoint {
            label: format!("{words}x{bits} @ {bw}x{bits} x{stack}"),
            words,
            bits,
            brick_words: bw,
            stack,
            delay: est.read_delay,
            energy: est.read_energy,
            area: est.area,
            elapsed,
        })
    })
    .into_iter()
    .collect()
}

/// Sweeps banking choices on top of brick choices: for each
/// `(partitions, brick_words)` pair that tiles a `words x bits` memory,
/// estimate the bank once and derive the memory-level figures — active
/// energy follows the one-hot bank (the Fig. 4b "E" effect), delay picks
/// up the output-mux levels, and area pays per-partition overhead.
///
/// # Errors
///
/// Returns [`LimError::BadConfig`] when no candidate tiles the memory;
/// propagates estimator failures.
pub fn explore_partitioned(
    tech: &Technology,
    words: usize,
    bits: usize,
    partition_options: &[usize],
    brick_word_options: &[usize],
) -> Result<Vec<DsePoint>, LimError> {
    let _span = lim_obs::Span::enter("dse_explore");
    let mut combos = Vec::new();
    for &p in partition_options {
        for &bw in brick_word_options {
            if p == 0 || bw == 0 || !p.is_power_of_two() || !words.is_multiple_of(p * bw) {
                continue;
            }
            let stack = words / (p * bw);
            if stack == 0 || stack > 64 {
                continue;
            }
            combos.push((p, bw, stack));
        }
    }
    if combos.is_empty() {
        return Err(LimError::BadConfig {
            reason: format!("no (partition, brick) candidate tiles {words} words"),
        });
    }
    let compiler = BrickCompiler::new(tech);
    lim_par::par_map(combos, |(p, bw, stack)| -> Result<DsePoint, LimError> {
        let spec = BrickSpec::new(BitcellKind::Sram8T, bw, bits)?;
        let (est, elapsed) = lim_obs::timed("dse_point", || {
            let brick = compiler.compile(&spec)?;
            brick.estimate_bank(stack)
        });
        let est = est?;
        // Output mux: one 2:1 level per bank-select bit, ~3τ each.
        let mux_levels = p.trailing_zeros() as f64;
        let delay = est.read_delay + tech.tau * (3.0 * mux_levels);
        // One bank activates per access; the others only see clock.
        let idle_clock = lim_tech::units::Femtofarads::new(9.0 * (p as f64 - 1.0))
            .switch_energy(tech.vdd);
        let energy = lim_tech::units::Femtojoules::new(
            est.read_energy.value() + idle_clock.value(),
        );
        // Banks tile with a routing channel's worth of overhead each.
        let area = lim_tech::units::SquareMicrons::new(
            est.area.value() * p as f64 * (1.0 + 0.03 * (p as f64 - 1.0)),
        );
        Ok(DsePoint {
            label: format!("{words}x{bits} p{p} @ {bw}x{bits} x{stack}"),
            words,
            bits,
            brick_words: bw,
            stack,
            delay,
            energy,
            area,
            elapsed,
        })
    })
    .into_iter()
    .collect()
}

/// How a two-level sweep — outer design points, each running a
/// multi-start placement inside — should split the one thread pool.
///
/// Exactly one level is ever parallel, so nested sweeps cannot
/// oversubscribe: `lim-par` uses one process-wide worker count, and
/// fanning out at both levels would stack pools multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestingPlan {
    /// Fan the outer sweep across `lim_par::par_map`.
    pub outer_parallel: bool,
    /// Let each flow run its placement starts in parallel
    /// ([`lim_physical::place::PlaceEffort::parallel_starts`]).
    pub inner_parallel_starts: bool,
}

/// Picks which level of a nested sweep gets the thread pool.
///
/// The heuristic is a single comparison: when the outer sweep has at
/// least as many independent points as the pool has workers
/// ([`lim_par::threads`]), the outer level alone can saturate the
/// machine, so it runs parallel and every inner placement keeps its
/// starts serial. Otherwise the outer level cannot fill the pool and
/// runs serially, letting each flow's multi-start placement fan out
/// instead. Either way the result is byte-identical to the fully
/// serial schedule — the plan moves work between threads, never
/// changes it.
pub fn nesting_plan(outer_points: usize) -> NestingPlan {
    let outer_parallel = outer_points >= lim_par::threads();
    NestingPlan {
        outer_parallel,
        inner_parallel_starts: !outer_parallel,
    }
}

impl NestingPlan {
    /// Applies the plan's inner-level decision to a placement effort.
    pub fn apply(&self, effort: lim_physical::place::PlaceEffort) -> lim_physical::place::PlaceEffort {
        let mut effort = effort;
        effort.parallel_starts = self.inner_parallel_starts;
        effort
    }
}

/// Returns the indices of the pareto-optimal points minimizing
/// (delay, energy, area): a point survives unless some other point is no
/// worse in every dimension and strictly better in one. Indices come
/// back in ascending (input) order.
///
/// `O(n log n)`: points are swept in lexicographic (delay, energy,
/// area) order, so any dominator of a point precedes it, and a
/// staircase of the survivors' (energy, area) pairs — energy strictly
/// ascending, area strictly descending — answers "does any earlier
/// survivor have energy ≤ e and area ≤ a" with one binary search.
/// Checking survivors only is sound because domination chains always
/// end at a survivor. Points with identical (delay, energy, area)
/// never dominate each other, so they are processed as one group.
pub fn pareto_front(points: &[DsePoint]) -> Vec<usize> {
    let n = points.len();
    let key = |i: usize| {
        let p = &points[i];
        (p.delay.value(), p.energy.value(), p.area.value())
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&i, &j| {
        let (di, ei, ai) = key(i);
        let (dj, ej, aj) = key(j);
        di.total_cmp(&dj)
            .then(ei.total_cmp(&ej))
            .then(ai.total_cmp(&aj))
            .then(i.cmp(&j))
    });
    let mut stair: Vec<(f64, f64)> = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    let mut g = 0;
    while g < n {
        let mut h = g + 1;
        while h < n && key(order[h]) == key(order[g]) {
            h += 1;
        }
        let (_, e, a) = key(order[g]);
        // Every lex-earlier survivor with energy ≤ e also has delay ≤ e's
        // delay and differs somewhere, so finding one with area ≤ a means
        // this whole group is dominated. Area decreases along the
        // staircase, so the last entry with energy ≤ e has the least area.
        let le = stair.partition_point(|&(se, _)| se <= e);
        let dominated = le > 0 && stair[le - 1].1 <= a;
        if !dominated {
            kept.extend_from_slice(&order[g..h]);
            // Entries with energy ≥ e and area ≥ a cover a subset of the
            // new pair's region; replace them with (e, a).
            let lo = stair.partition_point(|&(se, _)| se < e);
            let mut hi = lo;
            while hi < stair.len() && stair[hi].1 >= a {
                hi += 1;
            }
            stair.splice(lo..hi, [(e, a)]);
        }
        g = h;
    }
    kept.sort_unstable();
    kept
}

/// Normalizes each metric to the minimum across `points` (the Fig. 4c
/// presentation): returns `(delay, energy, area)` ratios per point.
pub fn normalized(points: &[DsePoint]) -> Vec<(f64, f64, f64)> {
    let min_of = |f: fn(&DsePoint) -> f64| -> f64 {
        points.iter().map(f).fold(f64::INFINITY, f64::min).max(1e-30)
    };
    let (d0, e0, a0) = (
        min_of(|p| p.delay.value()),
        min_of(|p| p.energy.value()),
        min_of(|p| p.area.value()),
    );
    points
        .iter()
        .map(|p| {
            (
                p.delay.value() / d0,
                p.energy.value() / e0,
                p.area.value() / a0,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4c_points() -> Vec<DsePoint> {
        explore(
            &Technology::cmos65(),
            &[(128, 8), (128, 16), (128, 32)],
            &[16, 32, 64],
        )
        .unwrap()
    }

    #[test]
    fn nine_points_for_fig4c() {
        assert_eq!(fig4c_points().len(), 9);
    }

    #[test]
    fn bigger_bricks_are_slower_but_cheaper_within_a_size() {
        // Paper: "As the brick size gets larger, critical path also
        // increases … partitions with larger bricks consume less energy
        // and area".
        let pts = fig4c_points();
        for bits in [8usize, 16, 32] {
            let mut of_size: Vec<&DsePoint> =
                pts.iter().filter(|p| p.bits == bits).collect();
            of_size.sort_by_key(|p| p.brick_words);
            for w in of_size.windows(2) {
                assert!(
                    w[1].delay > w[0].delay,
                    "{}: delay should grow with brick depth",
                    w[1].label
                );
                assert!(
                    w[1].energy < w[0].energy,
                    "{}: energy should shrink with brick depth",
                    w[1].label
                );
                assert!(
                    w[1].area < w[0].area,
                    "{}: area should shrink with brick depth",
                    w[1].label
                );
            }
        }
    }

    #[test]
    fn cross_size_observation_from_paper() {
        // "128x16 bit memory built with 16x16 bit bricks is still faster
        // than 128x8 bit memory built with 64x8 bit bricks."
        let pts = fig4c_points();
        let find = |bits: usize, bw: usize| {
            pts.iter()
                .find(|p| p.bits == bits && p.brick_words == bw)
                .expect("point exists")
        };
        assert!(find(16, 16).delay < find(8, 64).delay);
    }

    #[test]
    fn pareto_front_is_consistent() {
        let pts = fig4c_points();
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        // No front member dominates another front member.
        for &i in &front {
            for &j in &front {
                if i == j {
                    continue;
                }
                let (a, b) = (&pts[i], &pts[j]);
                let dominates = b.delay.value() <= a.delay.value()
                    && b.energy.value() <= a.energy.value()
                    && b.area.value() <= a.area.value()
                    && (b.delay.value() < a.delay.value()
                        || b.energy.value() < a.energy.value()
                        || b.area.value() < a.area.value());
                assert!(!dominates, "{} dominates {}", pts[j].label, pts[i].label);
            }
        }
    }

    /// The O(n²) definition the sweep implementation must agree with.
    fn naive_pareto_front(points: &[DsePoint]) -> Vec<usize> {
        let dominated = |a: &DsePoint, b: &DsePoint| -> bool {
            let le = b.delay.value() <= a.delay.value()
                && b.energy.value() <= a.energy.value()
                && b.area.value() <= a.area.value();
            let lt = b.delay.value() < a.delay.value()
                || b.energy.value() < a.energy.value()
                || b.area.value() < a.area.value();
            le && lt
        };
        (0..points.len())
            .filter(|&i| {
                !points
                    .iter()
                    .enumerate()
                    .any(|(j, b)| j != i && dominated(&points[i], b))
            })
            .collect()
    }

    #[test]
    fn pareto_front_matches_naive_on_random_points() {
        // Small discrete coordinate ranges force heavy ties — the regime
        // where a sweep's strict/non-strict domination edges go wrong.
        lim_testkit::prop::check("pareto_front_matches_naive", |rng| {
            let n = rng.gen_range(0usize..60);
            let pts: Vec<DsePoint> = (0..n)
                .map(|i| DsePoint {
                    label: format!("p{i}"),
                    words: 128,
                    bits: 8,
                    brick_words: 16,
                    stack: 1,
                    delay: Picoseconds::new(rng.gen_range(1u64..6) as f64),
                    energy: Femtojoules::new(rng.gen_range(1u64..6) as f64),
                    area: SquareMicrons::new(rng.gen_range(1u64..6) as f64),
                    elapsed: Duration::ZERO,
                })
                .collect();
            assert_eq!(pareto_front(&pts), naive_pareto_front(&pts));
        });
    }

    #[test]
    fn normalization_floors_at_one() {
        let pts = fig4c_points();
        for (d, e, a) in normalized(&pts) {
            assert!(d >= 1.0 && e >= 1.0 && a >= 1.0);
        }
    }

    #[test]
    fn partitioned_sweep_shows_the_fig4b_trade() {
        let tech = Technology::cmos65();
        let points =
            explore_partitioned(&tech, 128, 10, &[1, 2, 4, 8], &[16]).unwrap();
        assert_eq!(points.len(), 4);
        let by_p = |p: usize| {
            points
                .iter()
                .find(|x| x.label.contains(&format!("p{p} ")))
                .unwrap()
        };
        // Banking shrinks the active bank: energy falls from 1 to 4
        // partitions (idle clocking eventually claws it back) while area
        // climbs. Delay is a wash at the estimator level — the shorter
        // bank trades against the output mux — so only bound its spread;
        // the physical-flow-level win shows up in `flow::tests`.
        assert!(by_p(2).energy < by_p(1).energy);
        assert!(by_p(4).energy < by_p(2).energy);
        assert!(by_p(4).area > by_p(2).area);
        assert!(by_p(2).area > by_p(1).area);
        let spread = (by_p(4).delay.value() - by_p(1).delay.value()).abs()
            / by_p(1).delay.value();
        assert!(spread < 0.2, "delay spread {spread}");
    }

    #[test]
    fn partitioned_sweep_rejects_untileable_memories() {
        let tech = Technology::cmos65();
        assert!(matches!(
            explore_partitioned(&tech, 100, 10, &[3], &[7]),
            Err(LimError::BadConfig { .. })
        ));
    }

    #[test]
    fn indivisible_brick_depth_rejected() {
        let err = explore(&Technology::cmos65(), &[(100, 8)], &[16]).unwrap_err();
        assert!(matches!(err, LimError::BadConfig { .. }));
    }

    #[test]
    fn nesting_plan_parallelizes_exactly_one_level() {
        // Whatever the worker count, a plan never enables both levels
        // and never disables both.
        for outer in [1usize, 2, 4, 9, 64, 1000] {
            let plan = nesting_plan(outer);
            assert_ne!(
                plan.outer_parallel, plan.inner_parallel_starts,
                "outer={outer}: exactly one level must be parallel"
            );
        }
        // A sweep wider than any pool always takes the outer level.
        assert!(nesting_plan(1000).outer_parallel);
        // A single point cannot fill any pool (threads() >= 1 floors at
        // a pool of one, where outer wins the >= comparison trivially
        // only for outer >= 1 workers).
        let plan = nesting_plan(1);
        if lim_par::threads() > 1 {
            assert!(plan.inner_parallel_starts);
        }
        // The plan round-trips into PlaceEffort.
        let effort = plan.apply(lim_physical::place::PlaceEffort::starts(4));
        assert_eq!(effort.parallel_starts, plan.inner_parallel_starts);
        assert_eq!(effort.starts, 4);
    }

    #[test]
    fn sweep_completes_quickly() {
        // The paper quotes ~2 s wall clock for the 9-brick sweep. Our
        // analytic estimator plus the parallel sweep leave orders of
        // magnitude of headroom, so gate at an eighth of the paper's
        // budget — tight enough that an accidental O(n³) regression in
        // the estimator or a serialization bug in the pool trips it.
        // Per-point timings come from the shared span clock, so the same
        // numbers surface in obs reports and figure binaries.
        let points = fig4c_points();
        let total: Duration = points.iter().map(|p| p.elapsed).sum();
        assert!(total.as_secs_f64() < 0.25, "sweep took {total:?}");
    }
}
