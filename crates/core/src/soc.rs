//! Full-chip assembly (paper §4): compute core plus on-chip source
//! memories.
//!
//! "The resulting LiM based SpGEMM chip area is 1.3 mm², with a 0.39 mm²
//! LiM computation core block. A second chip … consumed 1.24 mm² total
//! area and a 0.33 mm² computation core block. On-chip SRAM blocks for
//! storing source matrices A and B are the same in both chips for a fair
//! comparison." This module performs that composition: a synthesized
//! compute core is combined with estimator-priced source SRAM blocks into
//! chip-level area and power totals.

use crate::error::LimError;
use crate::flow::{LimBlock, LimFlow};
use crate::sram::SramConfig;
use lim_tech::units::{Milliwatts, SquareMicrons};

/// One assembled chip: core + source memories.
#[derive(Debug, Clone)]
pub struct ChipAssembly {
    /// Chip name.
    pub name: String,
    /// Compute-core die area.
    pub core_area: SquareMicrons,
    /// Combined area of the source-matrix SRAM blocks.
    pub source_area: SquareMicrons,
    /// Whole-chip area (core + sources + integration overhead).
    pub total_area: SquareMicrons,
    /// Core power at its fmax.
    pub core_power: Milliwatts,
    /// Source-memory leakage + access power estimate.
    pub source_power: Milliwatts,
}

impl ChipAssembly {
    /// Whole-chip power.
    pub fn total_power(&self) -> Milliwatts {
        self.core_power + self.source_power
    }

    /// Core fraction of the die.
    pub fn core_fraction(&self) -> f64 {
        self.core_area.value() / self.total_area.value()
    }
}

/// Top-level integration overhead (pad ring share, global routing,
/// power grid) as a fraction of the summed block area.
pub const INTEGRATION_OVERHEAD: f64 = 0.12;

/// Assembles a chip around `core`, with `source_configs` describing the
/// on-chip A/B SRAM blocks (identical across chips for fair comparison).
///
/// # Errors
///
/// Propagates source-memory generation/synthesis failures.
pub fn assemble(
    flow: &mut LimFlow,
    name: &str,
    core: &LimBlock,
    source_configs: &[SramConfig],
) -> Result<ChipAssembly, LimError> {
    let mut source_area = 0.0f64;
    let mut source_power = 0.0f64;
    for cfg in source_configs {
        let block = flow.synthesize_sram(cfg)?;
        source_area += block.report.die_area.value();
        source_power += block.report.power.total().value();
    }
    let blocks = core.report.die_area.value() + source_area;
    Ok(ChipAssembly {
        name: name.to_owned(),
        core_area: core.report.die_area,
        source_area: SquareMicrons::new(source_area),
        total_area: SquareMicrons::new(blocks * (1.0 + INTEGRATION_OVERHEAD)),
        core_power: core.report.power.total(),
        source_power: Milliwatts::new(source_power),
    })
}

/// The paper's source-memory complement: two matrix stores (A and B).
///
/// # Errors
///
/// Propagates configuration validation.
pub fn paper_source_memories() -> Result<Vec<SramConfig>, LimError> {
    // Two 1024x32b stores, 4 banks each, from 64x32b bricks.
    Ok(vec![
        SramConfig::new(1024, 32, 4, 64)?,
        SramConfig::new(1024, 32, 4, 64)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cam::{CamConfig, SpgemmCoreConfig};

    fn mini_core_cfg() -> SpgemmCoreConfig {
        SpgemmCoreConfig {
            n_columns: 4,
            cam: CamConfig {
                entries: 8,
                key_bits: 6,
                data_bits: 6,
            },
        }
    }

    #[test]
    fn chips_assemble_with_identical_sources() {
        let mut flow = LimFlow::cmos65();
        let cfg = mini_core_cfg();
        let lim_core = flow.synthesize_lim_spgemm(&cfg).unwrap();
        let heap_core = flow.synthesize_heap_spgemm(&cfg).unwrap();
        // Small sources to keep the test fast.
        let sources = vec![SramConfig::new(128, 16, 1, 16).unwrap()];
        let lim_chip = assemble(&mut flow, "lim", &lim_core, &sources).unwrap();
        let heap_chip = assemble(&mut flow, "heap", &heap_core, &sources).unwrap();

        // Same source complement on both chips.
        assert_eq!(
            lim_chip.source_area.value(),
            heap_chip.source_area.value()
        );
        // The CAM-based core is the bigger one (paper: 0.39 vs 0.33 mm²,
        // "the LiM computation core block consumes 20% more area").
        assert!(
            lim_chip.core_area.value() > heap_chip.core_area.value(),
            "lim {} vs heap {}",
            lim_chip.core_area,
            heap_chip.core_area
        );
        // At this toy scale the per-lane MACs dominate the LiM core, so
        // the ratio overshoots the silicon's 1.18 (measured at 32 columns
        // where the heap's comparator tree catches up); just require the
        // right direction and a sane bound.
        let ratio = lim_chip.core_area.value() / heap_chip.core_area.value();
        assert!(
            (1.02..3.5).contains(&ratio),
            "core ratio {ratio} (paper ≈ 1.18 at full scale)"
        );
        // Totals stay close because the shared sources dominate less here
        // than on silicon, but the LiM chip is still the larger one.
        assert!(lim_chip.total_area > heap_chip.total_area);
        assert!(lim_chip.core_fraction() > 0.0 && lim_chip.core_fraction() < 1.0);
        assert!(lim_chip.total_power().value() > 0.0);
    }

    #[test]
    fn paper_sources_validate() {
        let sources = paper_source_memories().unwrap();
        assert_eq!(sources.len(), 2);
        for s in sources {
            assert_eq!(s.words(), 1024);
            assert_eq!(s.bits(), 32);
        }
    }
}
