//! Property tests for the synthesis-flow crate, on the hermetic
//! `lim-testkit` harness: SRAM configuration algebra, silicon-emulation
//! statistics and the DSE sweep invariants.

use lim::chip::SiliconEmulation;
use lim::dse::{explore, pareto_front};
use lim::sram::SramConfig;
use lim_brick::BrickLibrary;
use lim_physical::flow::{FlowOptions, PhysicalSynthesis};
use lim_physical::BlockReport;
use lim_rtl::generators::decoder;
use lim_tech::units::Megahertz;
use lim_tech::Technology;
use lim_testkit::prop::{check_with, PropConfig};
use lim_testkit::prop::check;

#[test]
fn sram_config_algebra_is_consistent() {
    check("sram_config_algebra_is_consistent", |rng| {
        // Build a valid config from random factors, then check the
        // derived quantities agree with each other.
        let brick_words = 1usize << rng.gen_range(2u32..6); // 4..32
        let partitions = 1usize << rng.gen_range(0u32..3); // 1, 2, 4
        let stack = 1usize << rng.gen_range(0u32..4); // 1..8
        let bits = rng.gen_range(4usize..33);
        let words = partitions * brick_words * stack;
        let cfg = SramConfig::new(words, bits, partitions, brick_words).unwrap();
        assert_eq!(cfg.words(), words);
        assert_eq!(cfg.partitions() * cfg.words_per_partition(), words);
        assert_eq!(cfg.stack() * cfg.brick_words(), cfg.words_per_partition());
        assert!(1usize << cfg.addr_bits() >= words);
        assert!(cfg.bank_bits() <= cfg.addr_bits());
        assert_eq!(1usize << cfg.bank_bits(), cfg.partitions());
    });
}

#[test]
fn invalid_sram_configs_are_rejected() {
    check("invalid_sram_configs_are_rejected", |rng| {
        let words = rng.gen_range(1usize..512);
        // Partitions that are not a power of two always fail.
        let bad_part = 3 + 2 * rng.gen_range(0usize..4); // 3,5,7,9 — odd > 1
        assert!(SramConfig::new(words, 8, bad_part, 4).is_err());
        // Words that don't tile into partitions * brick_words fail.
        let brick_words = rng.gen_range(3usize..17);
        if words % (2 * brick_words) != 0 {
            assert!(SramConfig::new(words, 8, 2, brick_words).is_err());
        }
        assert!(SramConfig::new(0, 8, 1, 4).is_err());
        assert!(SramConfig::new(16, 0, 1, 4).is_err());
    });
}

fn block() -> BlockReport {
    let tech = Technology::cmos65();
    let lib = BrickLibrary::new();
    let dec = decoder("dec", 4, 16, true).unwrap();
    PhysicalSynthesis::new(&tech, &lib)
        .run(&dec, &FlowOptions::default())
        .unwrap()
}

#[test]
fn silicon_lots_bracket_nominal_for_every_seed() {
    // Physical synthesis per case is the expensive part; 24 cases keeps
    // the suite at the former proptest count.
    check_with(
        PropConfig::with_cases(24),
        "silicon_lots_bracket_nominal_for_every_seed",
        {
            let rep = block();
            let tech = Technology::cmos65();
            move |rng| {
                let seed = rng.gen::<u64>();
                let dies = rng.gen_range(2usize..40);
                let emu = SiliconEmulation::new(&tech, seed);
                let lot = emu.measure_lot(&rep, dies);
                assert!(lot.fmax_min <= lot.fmax_mean && lot.fmax_mean <= lot.fmax_max);
                assert!(lot.energy_min <= lot.energy_mean && lot.energy_mean <= lot.energy_max);
                // Repeatability: the same seed measures the same lot.
                let again = SiliconEmulation::new(&tech, seed).measure_lot(&rep, dies);
                assert_eq!(lot, again);
                // Yield is a probability and monotone in the target.
                let easy = emu.yield_at(&rep, dies, lot.fmax_min * 0.99);
                let hard = emu.yield_at(&rep, dies, lot.fmax_max * 1.01);
                assert!((0.0..=1.0).contains(&easy) && (0.0..=1.0).contains(&hard));
                assert!(easy >= hard);
                assert!((easy - 1.0).abs() < 1e-12, "every die beats the observed min");
                assert!(hard.abs() < 1e-12, "no die beats the observed max");
            }
        },
    );
}

#[test]
fn simulation_corners_are_ordered_for_any_speed_sigma_seed() {
    check("simulation_corners_are_ordered_for_any_speed_sigma_seed", {
        let rep = block();
        let tech = Technology::cmos65();
        move |rng| {
            let emu = SiliconEmulation::new(&tech, rng.gen::<u64>());
            let c = emu.simulation_corners(&rep);
            assert!(c.worst < c.nominal && c.nominal < c.best);
            assert!(c.worst.value() > 0.0);
            let _ = Megahertz::new(c.nominal.value());
        }
    });
}

#[test]
fn dse_points_are_physical_and_front_is_minimal() {
    check("dse_points_are_physical_and_front_is_minimal", |rng| {
        let tech = Technology::cmos65();
        // Random sweep drawn from depths that divide the word counts.
        let words = 64usize << rng.gen_range(0u32..3); // 64/128/256
        let bits = 8 + 4 * rng.gen_range(0usize..5);
        let depths: Vec<usize> = [8usize, 16, 32, 64]
            .iter()
            .copied()
            .filter(|_| rng.gen::<bool>())
            .chain(std::iter::once(16))
            .collect();
        let points = explore(&tech, &[(words, bits)], &depths).unwrap();
        assert_eq!(points.len(), depths.len());
        for p in &points {
            assert!(p.delay.value() > 0.0);
            assert!(p.energy.value() > 0.0);
            assert!(p.area.value() > 0.0);
            assert_eq!(p.brick_words * p.stack, words);
        }
        let front = pareto_front(&points);
        assert!(!front.is_empty() && front.len() <= points.len());
        // Front members are mutually non-dominating on delay/energy.
        for &i in &front {
            for &j in &front {
                if i == j {
                    continue;
                }
                let (p, q) = (&points[i], &points[j]);
                let strictly_worse = p.delay.value() > q.delay.value()
                    && p.energy.value() > q.energy.value()
                    && p.area.value() > q.area.value();
                assert!(!strictly_worse);
            }
        }
    });
}
