//! Workspace-root crate hosting the integration tests (`tests/`) and
//! runnable examples (`examples/`) of the LiM synthesis reproduction.
//!
//! The actual functionality lives in the member crates; this crate simply
//! re-exports them under one roof so examples can `use lim_repro::...`.

pub use lim;
pub use lim_brick;
pub use lim_circuit;
pub use lim_physical;
pub use lim_rtl;
pub use lim_spgemm;
pub use lim_tech;
