#!/usr/bin/env bash
# Runs the full bench suite and writes a machine-readable report
# (`lim-obs-v1` JSON lines) to BENCH_report.json in the repo root, then
# validates the report with the in-tree `obs_check` binary.
#
#   scripts/bench.sh           full run (default sample counts)
#   scripts/bench.sh --smoke   fast validity check: 5 samples, no warmup
#
# The report path can be overridden with BENCH_OUT=/path/to/file.
# To compare two reports for regressions:
#   cargo run --release -p lim-obs --bin obs_check -- --compare old.json new.json
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with cwd at the package
# root, so a relative LIM_BENCH_OUT would scatter files across crates/.
out="${BENCH_OUT:-BENCH_report.json}"
case "$out" in
    /*) ;;
    *) out="$PWD/$out" ;;
esac
rm -f "$out"

if [[ "${1:-}" == "--smoke" ]]; then
    export LIM_BENCH_SAMPLES=5
    export LIM_BENCH_WARMUP_MS=0
fi

LIM_BENCH_OUT="$out" cargo bench --workspace --offline

cargo run --release --offline -q -p lim-obs --bin obs_check -- "$out" --require-bench
