#!/usr/bin/env bash
# Tier-1 gate: the whole repo must build, test, and lint clean with no
# network access, and the bench harness must produce a schema-valid
# report. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
./scripts/bench.sh --smoke
