#!/usr/bin/env bash
# Tier-1 gate: the whole repo must build, test, and lint clean with no
# network access. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline -- -D warnings
