#!/usr/bin/env bash
# Tier-1 gate: the whole repo must build, test, and lint clean with no
# network access, the bench harness must produce a schema-valid report,
# and results must be independent of the lim-par worker count. Run from
# the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Placement-quality gate: the analytic-seeded placer must keep the
# flow-bench netlists' final HPWL at or below both the cold anneal and
# the pinned bounds in tests/place_quality.rs (25402 / 9605 µm). Runs
# in release so the gate measures the shipped annealing budget.
echo "== tier1: placement HPWL quality gate =="
cargo test -q --release --offline --test place_quality
# Smoke the bench harness into a scratch report so the committed
# BENCH_report.json (full-run medians) is left untouched.
BENCH_OUT=/tmp/tier1_bench_smoke.json ./scripts/bench.sh --smoke

# Perf gate: every smoke median must stay within 1.5x of the committed
# full-run median, failing the run loudly on large physical-flow or
# spgemm regressions while tolerating machine noise on the fast rows.
echo "== tier1: bench regression gate (1.5x vs committed medians) =="
cargo run --release --offline -q -p lim-obs --bin obs_check -- \
    --compare BENCH_report.json /tmp/tier1_bench_smoke.json --max-regress 1.5

# Parallel-determinism smoke: the bench suite must emit the same row
# set (timings aside) whether lim-par runs 1 worker or 4, and
# obs_check --compare must accept the pair. A huge --max-regress keeps
# this a determinism check, not a timing one.
echo "== tier1: lim-par determinism smoke =="
LIM_PAR_THREADS=1 BENCH_OUT=/tmp/tier1_bench_t1.json ./scripts/bench.sh --smoke
LIM_PAR_THREADS=4 BENCH_OUT=/tmp/tier1_bench_t4.json ./scripts/bench.sh --smoke
cargo run --release --offline -q -p lim-obs --bin obs_check -- \
    --compare /tmp/tier1_bench_t1.json /tmp/tier1_bench_t4.json

# fig4c rows (DSE output) must be bit-identical across worker counts.
LIM_PAR_THREADS=1 cargo run --release --offline -q -p lim-bench --bin fig4c -- --json \
    >/tmp/tier1_fig4c_t1.json
LIM_PAR_THREADS=4 cargo run --release --offline -q -p lim-bench --bin fig4c -- --json \
    >/tmp/tier1_fig4c_t4.json
diff /tmp/tier1_fig4c_t1.json /tmp/tier1_fig4c_t4.json
echo "== tier1: determinism smoke OK =="

# Serve smoke: boot the daemon on an ephemeral port, hit every serving
# endpoint once through lim-client, verify a repeat request comes out
# of the response memo, and drain cleanly via server.shutdown.
echo "== tier1: lim-serve smoke =="
addr_file=/tmp/tier1_serve_addr
rm -f "$addr_file"
cargo run --release --offline -q -p lim-serve --bin lim-serve -- \
    --port 0 --addr-file "$addr_file" --quiet &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [[ -s "$addr_file" ]] && break
    sleep 0.1
done
[[ -s "$addr_file" ]] || { echo "lim-serve never published its address" >&2; exit 1; }
addr="$(head -n1 "$addr_file")"
client() {
    cargo run --release --offline -q -p lim-serve --bin lim-client -- --addr "$addr" "$@"
}
client --method server.ping >/dev/null
client --method brick.estimate --params '{"words":16,"bits":10,"stack":4}' >/dev/null
client --method golden.compare --params '{"words":16,"bits":10,"stack":2}' >/dev/null
# Batched golden validation: a small golden.compare batch must come
# back all-ok through the multi-RHS panel path, a repeat of one entry
# must hit the memo the batch populated, and server.stats must report
# the panel-occupancy figures the batch recorded.
golden_batch=$(client --method batch --params '{"requests":[{"method":"golden.compare","params":{"words":16,"bits":10,"stack":1}},{"method":"golden.compare","params":{"words":16,"bits":10,"stack":4}},{"method":"golden.compare","params":{"words":16,"bits":10,"stack":1}}]}')
echo "$golden_batch" | grep -q '"ok":true' \
    || { echo "golden.compare batch failed" >&2; exit 1; }
if echo "$golden_batch" | grep -q '"ok":false'; then
    echo "golden.compare batch had failing entries" >&2
    exit 1
fi
client --method golden.compare --params '{"words":16,"bits":10,"stack":4}' \
    | grep -q '"cached":true' \
    || { echo "golden.compare batch did not populate the memo" >&2; exit 1; }
client --method server.stats | grep -q '"panel_groups"' \
    || { echo "server.stats missing golden panel figures" >&2; exit 1; }
client --method flow.run --params '{"words":32,"bits":10,"partitions":1,"brick_words":16}' \
    >/dev/null
client --method dse.explore --params '{"memories":[[128,16]],"brick_words":[16,32,64]}' \
    >/dev/null
# RTL inference smoke: the committed example design must synthesize
# end to end through rtl.infer, and a repeat must come out of the memo
# byte-identical (cached flag aside).
rtl_cold=$(client --method rtl.infer --source-file examples/smart_mem.v \
    --params '{"brick_words":[16,32,64]}')
echo "$rtl_cold" | grep -q '"cached":false' \
    || { echo "rtl.infer cold run unexpectedly cached" >&2; exit 1; }
echo "$rtl_cold" | grep -q '"module":"smart_mem"' \
    || { echo "rtl.infer failed: $rtl_cold" >&2; exit 1; }
echo "$rtl_cold" | grep -q '"entries":\["brick_8t_' \
    || { echo "rtl.infer chose no brick entries: $rtl_cold" >&2; exit 1; }
rtl_warm=$(client --method rtl.infer --source-file examples/smart_mem.v \
    --params '{"brick_words":[16,32,64]}')
[[ "$rtl_warm" == "${rtl_cold/\"cached\":false/\"cached\":true}" ]] \
    || { echo "rtl.infer warm answer differs from cold compute" >&2; \
         echo "cold: ${rtl_cold:0:400}" >&2; echo "warm: ${rtl_warm:0:400}" >&2; exit 1; }
# The rtl.* obs counters must surface in server.stats.
client --method server.stats | grep -q '"rtl.infer.memories"' \
    || { echo "server.stats missing rtl.infer counters" >&2; exit 1; }
# The repeated estimate must be served from the response memo.
client --method brick.estimate --params '{"words":16,"bits":10,"stack":4}' \
    | grep -q '"cached":true'
# Telemetry: a traced request must come back with its rendered span
# tree, server.stats must carry latency percentiles and rolling
# windows, server.trace must serve retained traces, and the telemetry
# export must validate as lim-obs-v1 (hist/window/trace rows).
echo "== tier1: lim-serve telemetry smoke =="
# Capture, then grep: piping straight into `grep -q` lets grep close
# the pipe after the first match while lim-client is still printing
# the rest of the tree, which pipefail reports as a client failure.
traced=$(client --method brick.estimate --params '{"words":32,"bits":12,"stack":2}' --trace)
echo "$traced" | grep -q '^trace ' \
    || { echo "lim-client --trace rendered no span tree" >&2; exit 1; }
stats=$(client --method server.stats)
echo "$stats" | grep -q '"p99_us"' \
    || { echo "server.stats missing latency percentiles" >&2; exit 1; }
echo "$stats" | grep -q '"last1m"' \
    || { echo "server.stats missing rolling windows" >&2; exit 1; }
client --method server.trace --params '{"n":3,"order":"slowest"}' \
    | grep -q '"spans"' \
    || { echo "server.trace returned no retained traces" >&2; exit 1; }
client --telemetry-export /tmp/tier1_telemetry.json --quiet
grep -q '"type":"trace"' /tmp/tier1_telemetry.json \
    || { echo "telemetry export retained no traces" >&2; exit 1; }
cargo run --release --offline -q -p lim-obs --bin obs_check -- /tmp/tier1_telemetry.json
echo "== tier1: lim-serve telemetry smoke OK =="
client --shutdown >/dev/null
wait "$serve_pid"
trap - EXIT
echo "== tier1: lim-serve smoke OK =="

# Helpers for the multi-daemon smokes below: boot a daemon, wait for
# its address file, talk to an explicit address.
boot_serve() { # boot_serve ADDR_FILE [extra flags...]
    local addr_file="$1"; shift
    rm -f "$addr_file"
    cargo run --release --offline -q -p lim-serve --bin lim-serve -- \
        --port 0 --addr-file "$addr_file" --quiet "$@" &
}
wait_addr() { # wait_addr ADDR_FILE -> prints the address
    local addr_file="$1"
    for _ in $(seq 1 100); do
        [[ -s "$addr_file" ]] && break
        sleep 0.1
    done
    [[ -s "$addr_file" ]] || { echo "daemon never published $addr_file" >&2; exit 1; }
    head -n1 "$addr_file"
}
client_at() { # client_at ADDR [client flags...]
    local at="$1"; shift
    cargo run --release --offline -q -p lim-serve --bin lim-client -- --addr "$at" "$@"
}

# Restart-warm smoke: a daemon booted on a populated --cache-dir must
# answer the first repeat of an earlier request cached:true and
# byte-identical (cached flag aside) to the cold compute.
echo "== tier1: lim-serve restart-warm smoke =="
disk_dir=/tmp/tier1_serve_disk
rm -rf "$disk_dir"
boot_serve /tmp/tier1_serve_addr_disk --cache-dir "$disk_dir"
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr="$(wait_addr /tmp/tier1_serve_addr_disk)"
cold=$(client_at "$addr" --method golden.compare --params '{"words":24,"bits":9,"stack":2}')
echo "$cold" | grep -q '"cached":false' \
    || { echo "cold run unexpectedly cached: $cold" >&2; exit 1; }
client_at "$addr" --shutdown >/dev/null
wait "$serve_pid"
boot_serve /tmp/tier1_serve_addr_disk --cache-dir "$disk_dir"
serve_pid=$!
addr="$(wait_addr /tmp/tier1_serve_addr_disk)"
warm=$(client_at "$addr" --method golden.compare --params '{"words":24,"bits":9,"stack":2}')
echo "$warm" | grep -q '"cached":true' \
    || { echo "restarted daemon did not come up warm: $warm" >&2; exit 1; }
[[ "$warm" == "${cold/\"cached\":false/\"cached\":true}" ]] \
    || { echo "warm answer differs from cold compute" >&2; \
         echo "cold: $cold" >&2; echo "warm: $warm" >&2; exit 1; }
client_at "$addr" --shutdown >/dev/null
wait "$serve_pid"
trap - EXIT
rm -rf "$disk_dir"
echo "== tier1: lim-serve restart-warm smoke OK =="

# Cluster smoke: lim-router over two shards must answer a batch
# byte-identically to a lone shard, lim-client --shards must route,
# and a shutdown through the router must drain every process.
echo "== tier1: lim-serve cluster smoke =="
boot_serve /tmp/tier1_shard1_addr; shard1_pid=$!
boot_serve /tmp/tier1_shard2_addr; shard2_pid=$!
boot_serve /tmp/tier1_single_addr; single_pid=$!
trap 'kill "$shard1_pid" "$shard2_pid" "$single_pid" 2>/dev/null || true' EXIT
shard1="$(wait_addr /tmp/tier1_shard1_addr)"
shard2="$(wait_addr /tmp/tier1_shard2_addr)"
single="$(wait_addr /tmp/tier1_single_addr)"
rm -f /tmp/tier1_router_addr
cargo run --release --offline -q -p lim-serve --bin lim-router -- \
    --port 0 --shards "$shard1,$shard2" --addr-file /tmp/tier1_router_addr --quiet &
router_pid=$!
trap 'kill "$shard1_pid" "$shard2_pid" "$single_pid" "$router_pid" 2>/dev/null || true' EXIT
router="$(wait_addr /tmp/tier1_router_addr)"
cluster_batch='{"requests":[{"method":"server.ping"},{"method":"brick.estimate","params":{"words":24,"bits":9,"stack":2}},{"method":"golden.compare","params":{"words":40,"bits":8,"stack":2}},{"method":"brick.estimate","params":{"words":128,"bits":12,"stack":4}}]}'
routed=$(client_at "$router" --method batch --params "$cluster_batch")
direct=$(client_at "$single" --method batch --params "$cluster_batch")
[[ "$routed" == "$direct" ]] \
    || { echo "router batch differs from lone shard" >&2; \
         echo "routed: $routed" >&2; echo "direct: $direct" >&2; exit 1; }
# rtl.infer through the router must match the lone shard byte for
# byte (deterministic DSE choice + flow on whichever shard it lands).
rtl_routed=$(client_at "$router" --method rtl.infer --source-file examples/smart_mem.v \
    --params '{"brick_words":[32,64]}')
rtl_direct=$(client_at "$single" --method rtl.infer --source-file examples/smart_mem.v \
    --params '{"brick_words":[32,64]}')
[[ "$rtl_routed" == "$rtl_direct" ]] \
    || { echo "routed rtl.infer differs from lone shard" >&2; \
         echo "routed: ${rtl_routed:0:400}" >&2; \
         echo "direct: ${rtl_direct:0:400}" >&2; exit 1; }
# Router-less client-side routing over the same ring.
cargo run --release --offline -q -p lim-serve --bin lim-client -- \
    --shards "$shard1,$shard2" \
    --method brick.estimate --params '{"words":64,"bits":12,"stack":2}' \
    | grep -q '"ok":true' \
    || { echo "lim-client --shards failed to route" >&2; exit 1; }
# Drain the whole cluster through the router, then the lone shard.
client_at "$router" --shutdown >/dev/null
wait "$router_pid" "$shard1_pid" "$shard2_pid"
client_at "$single" --shutdown >/dev/null
wait "$single_pid"
trap - EXIT
echo "== tier1: lim-serve cluster smoke OK =="
