//! End-to-end flow tests crossing every crate: RTL generation → mapping →
//! brick library → physical synthesis, plus the restrictive-patterning
//! area comparison between the LiM flow and a conventional one.

use lim::flow::LimFlow;
use lim::sram::{self, SramConfig};
use lim_brick::BrickLibrary;
use lim_physical::floorplan::FloorplanOptions;
use lim_physical::flow::{FlowOptions, PhysicalSynthesis};
use lim_rtl::mapping::optimize;
use lim_tech::Technology;

#[test]
fn lim_flow_beats_conventional_flow_on_area() {
    // The same 64x10 SRAM, synthesized once with pattern-compatible
    // logic (LiM: no guard spacing) and once pretending the logic is
    // conventional (guard bands around every macro).
    let tech = Technology::cmos65();
    let mut lib = BrickLibrary::new();
    let cfg = SramConfig::new(64, 10, 2, 16).unwrap();
    let netlist = sram::generate(&tech, &cfg, &mut lib).unwrap();
    let (mapped, _) = optimize(&netlist).unwrap();

    let run = |conventional: bool| {
        let options = FlowOptions {
            floorplan: FloorplanOptions {
                conventional_logic: conventional,
                ..FloorplanOptions::default()
            },
            ..FlowOptions::default()
        };
        PhysicalSynthesis::new(&tech, &lib).run(&mapped, &options).unwrap()
    };
    let lim = run(false);
    let conventional = run(true);
    assert_eq!(lim.guard_area.value(), 0.0);
    assert!(conventional.guard_area.value() > 0.0);
    assert!(
        conventional.die_area.value() > lim.die_area.value(),
        "conventional {} vs LiM {}",
        conventional.die_area,
        lim.die_area
    );
}

#[test]
fn verilog_artifacts_are_emitted_for_the_whole_design() {
    let tech = Technology::cmos65();
    let mut lib = BrickLibrary::new();
    let cfg = SramConfig::new(32, 10, 1, 16).unwrap();
    let netlist = sram::generate(&tech, &cfg, &mut lib).unwrap();
    let text = lim_rtl::verilog::emit(&netlist);
    assert!(text.contains("module sram_32x10_p1_b16"));
    assert!(text.contains("brick_8t_16_10_x2 u_bank0"));
    assert!(text.contains("endmodule"));

    // The Fig. 3 stub pair is also available from the brick side.
    let spec = cfg.brick_spec().unwrap();
    let stub = lim_brick::verilog::brick_module(&spec);
    assert!(stub.contains("module brick_8t_16_10"));
}

#[test]
fn gate_level_simulation_of_generated_sram_periphery() {
    // Simulate the read decoder of a generated SRAM: for each address,
    // exactly one read wordline (macro input) goes hot.
    use lim_rtl::Simulator;
    let tech = Technology::cmos65();
    let mut lib = BrickLibrary::new();
    let cfg = SramConfig::new(32, 10, 1, 16).unwrap();
    let netlist = sram::generate(&tech, &cfg, &mut lib).unwrap();
    let mut sim = Simulator::new(&netlist).unwrap();

    // The bank macro's read wordlines are its inputs 2..2+32 (after clk
    // and enable).
    let macro_cell = netlist
        .cells()
        .iter()
        .find(|c| matches!(c.kind, lim_rtl::CellKind::Macro { .. }))
        .expect("one bank macro");
    let rdwl: Vec<lim_rtl::NetId> = macro_cell.inputs[2..2 + 32].to_vec();

    // Inputs after the clock: raddr[5], waddr[5], we, din[10].
    for addr in [0usize, 7, 19, 31] {
        let mut inputs = Vec::new();
        for b in 0..5 {
            inputs.push((addr >> b) & 1 == 1); // raddr
        }
        inputs.extend([false; 5]); // waddr
        inputs.push(false); // we
        inputs.extend([false; 10]); // din
        sim.eval(&inputs).unwrap();
        let hot: Vec<usize> = rdwl
            .iter()
            .enumerate()
            .filter(|(_, &n)| sim.value(n))
            .map(|(w, _)| w)
            .collect();
        assert_eq!(hot, vec![addr], "address {addr}");
    }
}

#[test]
fn flow_results_are_reproducible() {
    let mut flow_a = LimFlow::cmos65();
    let mut flow_b = LimFlow::cmos65();
    let cfg = SramConfig::new(32, 10, 1, 16).unwrap();
    let a = flow_a.synthesize_sram(&cfg).unwrap();
    let b = flow_b.synthesize_sram(&cfg).unwrap();
    assert_eq!(a.report.fmax.value(), b.report.fmax.value());
    assert_eq!(a.report.die_area.value(), b.report.die_area.value());
    assert_eq!(
        a.report.energy_per_cycle.value(),
        b.report.energy_per_cycle.value()
    );
}
