//! Integration tests for the Fig. 4b / Fig. 4c reproductions: the
//! configuration orderings and DSE observations the paper reports.

use lim::chip::SiliconEmulation;
use lim::dse::{explore, normalized};
use lim::flow::{LimBlock, LimFlow};
use lim::sram::SramConfig;
use lim_tech::Technology;

fn synth_all() -> Vec<(&'static str, LimBlock)> {
    let mut flow = LimFlow::cmos65();
    [
        ("A", SramConfig::new(16, 10, 1, 16).unwrap()),
        ("B", SramConfig::new(32, 10, 1, 16).unwrap()),
        ("C", SramConfig::new(64, 10, 1, 16).unwrap()),
        ("D", SramConfig::new(128, 10, 1, 16).unwrap()),
        ("E", SramConfig::new(128, 10, 4, 16).unwrap()),
    ]
    .into_iter()
    .map(|(n, c)| (n, flow.synthesize_sram(&c).unwrap()))
    .collect()
}

#[test]
fn fig4b_all_orderings_hold() {
    let blocks = synth_all();
    let f = |i: usize| blocks[i].1.report.fmax.value();
    let e = |i: usize| blocks[i].1.report.energy_per_cycle.value();
    let area = |i: usize| blocks[i].1.report.die_area.value();

    // Performance: A > B > C > D, and B > E > D.
    assert!(f(0) > f(1) && f(1) > f(2) && f(2) > f(3), "A>B>C>D fails");
    assert!(f(1) > f(4), "B > E fails: {} vs {}", f(1), f(4));
    assert!(f(4) > f(3), "E > D fails: {} vs {}", f(4), f(3));

    // Energy per access grows with size; bank gating makes E cheaper
    // than D.
    assert!(e(0) < e(1) && e(1) < e(2) && e(2) < e(3), "energy ordering");
    assert!(e(4) < e(3), "E should save energy over D");

    // Partitioning costs area.
    assert!(area(4) > area(3), "E should out-size D");
}

#[test]
fn fig4b_chip_measurements_track_simulation() {
    // "Simulation results are in line with chip measurements and capture
    // the trend of chip results … within a small error rate."
    let tech = Technology::cmos65();
    let blocks = synth_all();
    let mut prev_chip = f64::INFINITY;
    for (i, (name, block)) in blocks.iter().take(4).enumerate() {
        let emu = SiliconEmulation::new(&tech, 42 + i as u64);
        let lot = emu.measure_lot(&block.report, 10);
        let corners = emu.simulation_corners(&block.report);
        // Chip mean within the simulated corner spread (with margin).
        assert!(
            lot.fmax_mean.value() < corners.best.value() * 1.05
                && lot.fmax_mean.value() > corners.worst.value() * 0.95,
            "{name}: chip {} outside corners {}..{}",
            lot.fmax_mean,
            corners.worst,
            corners.best
        );
        // The A>B>C>D trend survives measurement noise.
        assert!(lot.fmax_mean.value() < prev_chip, "{name} breaks the trend");
        prev_chip = lot.fmax_mean.value();
        // Die-to-die spread is visible but bounded.
        let spread = (lot.fmax_max.value() - lot.fmax_min.value()) / lot.fmax_mean.value();
        assert!(spread > 0.0 && spread < 0.5, "{name}: spread {spread}");
    }
}

#[test]
fn fig4c_paper_observations() {
    let tech = Technology::cmos65();
    let points = explore(&tech, &[(128, 8), (128, 16), (128, 32)], &[16, 32, 64]).unwrap();
    assert_eq!(points.len(), 9);

    // Within a size: larger brick → slower, less energy, less area.
    for bits in [8usize, 16, 32] {
        let mut of: Vec<_> = points.iter().filter(|p| p.bits == bits).collect();
        of.sort_by_key(|p| p.brick_words);
        for w in of.windows(2) {
            assert!(w[1].delay > w[0].delay);
            assert!(w[1].energy < w[0].energy);
            assert!(w[1].area < w[0].area);
        }
    }

    // Cross-size observations from the paper's text.
    let find = |bits: usize, bw: usize| {
        points
            .iter()
            .find(|p| p.bits == bits && p.brick_words == bw)
            .unwrap()
    };
    assert!(find(16, 16).delay < find(8, 64).delay);
    let ratio = find(16, 16).energy.value() / find(32, 64).energy.value();
    assert!(
        (0.5..1.5).contains(&ratio),
        "128x16@16x16 vs 128x32@64x32 energy ratio {ratio} should be near 1"
    );

    // Normalization is well-formed.
    for (d, e, a) in normalized(&points) {
        assert!(d >= 1.0 && e >= 1.0 && a >= 1.0);
    }
}

#[test]
fn fig4c_sweep_is_rapid() {
    // The paper's wall-clock claim: 9 bricks in ~2 s. Our analytic
    // estimator should beat that comfortably.
    let tech = Technology::cmos65();
    let start = std::time::Instant::now();
    let _ = explore(&tech, &[(128, 8), (128, 16), (128, 32)], &[16, 32, 64]).unwrap();
    assert!(start.elapsed().as_secs_f64() < 2.0);
}
