//! Integration test for the Table 1 reproduction: the analytic estimator
//! must track the golden transient reference within (a relaxed version
//! of) the paper's error bands, across both bricks and all stack depths.

use lim_brick::golden::compare;
use lim_brick::{BitcellKind, BrickCompiler, BrickSpec};
use lim_tech::Technology;

#[test]
fn tool_vs_golden_across_the_full_table() {
    let tech = Technology::cmos65();
    let compiler = BrickCompiler::new(&tech);
    let bricks = [
        BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap(),
        BrickSpec::new(BitcellKind::Sram8T, 32, 12).unwrap(),
    ];
    for spec in &bricks {
        let brick = compiler.compile(spec).unwrap();
        let mut prev_delay = 0.0;
        let mut prev_energy = 0.0;
        for stack in [1usize, 4, 8] {
            let cmp = compare(&brick, stack).unwrap();
            // Paper: 2-7 % delay, 0-4 % read energy, 0-2 % write energy.
            // Allow 10 % / 6 % / 8 % for the reproduction.
            assert!(
                cmp.delay_error().abs() < 0.10,
                "{spec} x{stack}: delay error {:.1}%",
                cmp.delay_error() * 100.0
            );
            assert!(
                cmp.read_energy_error().abs() < 0.06,
                "{spec} x{stack}: read energy error {:.1}%",
                cmp.read_energy_error() * 100.0
            );
            assert!(
                cmp.write_energy_error().abs() < 0.08,
                "{spec} x{stack}: write energy error {:.1}%",
                cmp.write_energy_error() * 100.0
            );
            // Both tool and golden grow monotonically with stacking.
            assert!(cmp.tool.read_delay.value() > prev_delay);
            assert!(cmp.golden.read_energy.value() > prev_energy);
            prev_delay = cmp.tool.read_delay.value();
            prev_energy = cmp.golden.read_energy.value();
        }
    }
}

#[test]
fn absolute_values_in_the_65nm_regime() {
    // Table 1 reports 247-359 ps and 0.54-1.19 pJ; our absolutes should
    // land in the same order of magnitude.
    let tech = Technology::cmos65();
    let brick = BrickCompiler::new(&tech)
        .compile(&BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap())
        .unwrap();
    let est = brick.estimate_bank(1).unwrap();
    assert!(
        est.read_delay.value() > 100.0 && est.read_delay.value() < 600.0,
        "read delay {}",
        est.read_delay
    );
    let pj = est.read_energy.to_picojoules().value();
    assert!((0.05..5.0).contains(&pj), "read energy {pj} pJ");
}

#[test]
fn library_generation_covers_unconventional_sizes() {
    // The paper: "Any unconventional bit, row, and stacking numbers
    // (non-multiple of 8) are also permitted."
    let tech = Technology::cmos65();
    let spec = BrickSpec::new(BitcellKind::Sram8T, 17, 11).unwrap();
    let brick = BrickCompiler::new(&tech).compile(&spec).unwrap();
    for stack in [1usize, 3, 5] {
        let est = brick.estimate_bank(stack).unwrap();
        assert!(est.read_delay.value() > 0.0, "stack {stack}");
    }
}
