//! Cross-crate observability tests: a full LimFlow run with `lim-obs`
//! enabled must emit the documented stage-span tree (floorplan, place,
//! route, STA, power under `physical`) with nonzero counters, the
//! captured report must serialize to schema-valid `lim-obs-v1` JSON
//! lines, the telemetry histogram must merge to identical bucket
//! counts regardless of how many workers recorded into it, and the
//! serve layer's connection accounting must balance.

use lim::flow::LimFlow;
use lim::sram::SramConfig;
use lim_obs::{Histogram, Report, SharedHistogram};

/// Serializes tests that mutate `LIM_PAR_THREADS`: the process
/// environment is global, so concurrent test threads would race (same
/// pattern as `tests/determinism.rs`).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn full_flow_emits_stage_span_tree_and_counters() {
    lim_obs::set_enabled(true);
    lim_obs::reset();

    let mut flow = LimFlow::cmos65();
    let cfg = SramConfig::new(64, 10, 2, 16).unwrap();
    let block = flow.synthesize_sram(&cfg).unwrap();
    assert!(block.report.fmax.value() > 0.0);

    let report = Report::capture_as("observability-test");

    // The stage-span tree: every physical stage of the paper's Fig. 2
    // flow shows up, nested under lim_flow/physical, with >=1 call and
    // nonzero accumulated time at the root.
    let root = report.span("lim_flow").expect("lim_flow root span");
    assert_eq!(root.depth, 0);
    assert!(root.calls >= 1);
    assert!(root.total.as_nanos() > 0, "root span has no time");
    report.span("lim_flow/generate").expect("generate span");
    report.span("lim_flow/map").expect("map span");
    for stage in ["floorplan", "place", "route", "sta", "clock_tree", "power"] {
        let path = format!("lim_flow/physical/{stage}");
        let s = report.span(&path).unwrap_or_else(|| panic!("missing {path}"));
        assert!(s.calls >= 1, "{path} recorded no calls");
    }

    // Counters from several layers of the stack are nonzero.
    for counter in [
        "brick.compiles",
        "flow.blocks",
        "place.moves",
        "route.nets",
        "sta.endpoints",
    ] {
        let v = report
            .counter(counter)
            .unwrap_or_else(|| panic!("missing counter {counter}"));
        assert!(v > 0, "counter {counter} is zero");
    }

    // The serialized report is valid lim-obs-v1 JSON lines.
    let lines = report.to_json_lines();
    let n = lim_obs::json::validate_lines(&lines).expect("valid JSON lines");
    assert!(n > 10, "expected a substantial report, got {n} lines");
    assert!(lines.starts_with("{\"type\":\"meta\",\"schema\":\"lim-obs-v1\""));

    lim_obs::reset();
}

#[test]
fn shared_histogram_buckets_are_identical_across_worker_counts() {
    // The determinism contract for telemetry: bucket counts are a pure
    // function of the recorded values, never of which thread shard
    // received them or in what order. Record the same latency set under
    // 1 worker and 4 workers and demand identical merged histograms.
    let _env = ENV_LOCK.lock().unwrap();
    let inputs: Vec<u64> = (0..4096u64)
        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 44)
        .collect();
    let run = |threads: &str| -> Histogram {
        std::env::set_var(lim_par::ENV_THREADS, threads);
        let shared = SharedHistogram::new();
        lim_par::par_map(inputs.clone(), |ns| shared.record_ns(ns));
        std::env::remove_var(lim_par::ENV_THREADS);
        shared.merged()
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(
        one.buckets().as_slice(),
        four.buckets().as_slice(),
        "merged bucket counts must not depend on the worker count"
    );
    assert_eq!(one.count(), 4096);
    assert_eq!(one.count(), four.count());
    assert_eq!(one.sum_ns(), four.sum_ns());
    assert_eq!(one.max_ns(), four.max_ns());
    for q in [0.50, 0.90, 0.99] {
        assert_eq!(one.percentile_ns(q), four.percentile_ns(q));
    }
}

#[test]
fn server_connection_accounting_balances_and_reports_timeouts() {
    // The `connections` object in `server.stats` must tell the truth:
    // `accepted == open + closed` at quiescent moments, the open gauge
    // tracks live sockets, and idle-timed-out connections show up in
    // `timed_out` (and in `closed` — a timeout is also a close).
    use lim_obs::json::Value;
    use lim_serve::net::{write_line, LineReader};
    use lim_serve::{ServeConfig, Server};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let server = Server::bind(
        "127.0.0.1:0",
        &ServeConfig {
            max_in_flight: 2,
            cache_bytes: 1 << 16,
            idle_timeout: Some(Duration::from_millis(300)),
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();

    let stats = |writer: &mut TcpStream, reader: &mut LineReader| -> (u64, u64, u64, u64) {
        write_line(writer, "{\"id\":0,\"method\":\"server.stats\",\"params\":{}}")
            .expect("stats request");
        let line = reader
            .read_line(&|| false)
            .expect("stats read")
            .expect("stats line");
        let v = Value::parse(&line).expect("stats parse");
        let conns = v
            .get("result")
            .and_then(|r| r.get("connections"))
            .unwrap_or_else(|| panic!("connections object missing: {line}"))
            .clone();
        let get = |k: &str| conns.get(k).and_then(Value::as_f64).expect(k) as u64;
        (
            get("open"),
            get("accepted"),
            get("closed"),
            get("timed_out"),
        )
    };

    // One live connection: itself.
    let probe = TcpStream::connect(addr).expect("probe connect");
    probe.set_nodelay(true).unwrap();
    let mut reader = LineReader::new(probe.try_clone().unwrap());
    let mut writer = probe;
    let (open, accepted, closed, timed_out) = stats(&mut writer, &mut reader);
    assert_eq!(open, 1, "the stats connection itself");
    assert_eq!(accepted, 1);
    assert_eq!(closed, 0);
    assert_eq!(timed_out, 0);

    // Two more connections come and go cleanly; a third goes silent and
    // must be reaped by the idle timeout.
    for _ in 0..2 {
        let extra = TcpStream::connect(addr).expect("extra connect");
        drop(extra);
    }
    let silent = TcpStream::connect(addr).expect("silent connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    let (open, accepted, closed, timed_out) = loop {
        let snap = stats(&mut writer, &mut reader);
        if snap.3 >= 1 && snap.1 == snap.0 + snap.2 {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "idle connection never timed out: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(accepted, 4, "stats conn + 2 dropped + 1 silent");
    assert_eq!(timed_out, 1, "exactly the silent connection timed out");
    assert_eq!(closed, 3, "2 dropped + 1 timed out");
    assert_eq!(open, 1, "the stats connection keeps talking");
    assert_eq!(accepted, open + closed, "accounting must balance");

    // The reaped socket really is closed: reads see EOF.
    use std::io::Read;
    let mut silent = silent;
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 8];
    assert_eq!(
        silent.read(&mut buf).expect("EOF, not a timeout"),
        0,
        "server must close a timed-out connection"
    );

    handle.shutdown_and_join().expect("clean drain");
}
