//! Cross-crate observability test: a full LimFlow run with `lim-obs`
//! enabled must emit the documented stage-span tree (floorplan, place,
//! route, STA, power under `physical`) with nonzero counters, and the
//! captured report must serialize to schema-valid `lim-obs-v1` JSON
//! lines.

use lim::flow::LimFlow;
use lim::sram::SramConfig;
use lim_obs::Report;

#[test]
fn full_flow_emits_stage_span_tree_and_counters() {
    lim_obs::set_enabled(true);
    lim_obs::reset();

    let mut flow = LimFlow::cmos65();
    let cfg = SramConfig::new(64, 10, 2, 16).unwrap();
    let block = flow.synthesize_sram(&cfg).unwrap();
    assert!(block.report.fmax.value() > 0.0);

    let report = Report::capture_as("observability-test");

    // The stage-span tree: every physical stage of the paper's Fig. 2
    // flow shows up, nested under lim_flow/physical, with >=1 call and
    // nonzero accumulated time at the root.
    let root = report.span("lim_flow").expect("lim_flow root span");
    assert_eq!(root.depth, 0);
    assert!(root.calls >= 1);
    assert!(root.total.as_nanos() > 0, "root span has no time");
    report.span("lim_flow/generate").expect("generate span");
    report.span("lim_flow/map").expect("map span");
    for stage in ["floorplan", "place", "route", "sta", "clock_tree", "power"] {
        let path = format!("lim_flow/physical/{stage}");
        let s = report.span(&path).unwrap_or_else(|| panic!("missing {path}"));
        assert!(s.calls >= 1, "{path} recorded no calls");
    }

    // Counters from several layers of the stack are nonzero.
    for counter in [
        "brick.compiles",
        "flow.blocks",
        "place.moves",
        "route.nets",
        "sta.endpoints",
    ] {
        let v = report
            .counter(counter)
            .unwrap_or_else(|| panic!("missing counter {counter}"));
        assert!(v > 0, "counter {counter} is zero");
    }

    // The serialized report is valid lim-obs-v1 JSON lines.
    let lines = report.to_json_lines();
    let n = lim_obs::json::validate_lines(&lines).expect("valid JSON lines");
    assert!(n > 10, "expected a substantial report, got {n} lines");
    assert!(lines.starts_with("{\"type\":\"meta\",\"schema\":\"lim-obs-v1\""));

    lim_obs::reset();
}
