//! Integration test for the Fig. 6 reproduction: over the benchmark
//! suite, the LiM chip wins on every benchmark, the win spans more than
//! an order of magnitude, and energy savings exceed speedups (the 96/72
//! power ratio) — the paper's 7x–250x / 10x–310x shape.

use lim_spgemm::accel::heap::HeapAccelerator;
use lim_spgemm::accel::lim_cam::LimCamAccelerator;
use lim_spgemm::energy::{ChipComparison, ChipPowerModel};
use lim_spgemm::reference::spgemm;
use lim_spgemm::suite::{fig6_suite, SuiteScale};

#[test]
fn fig6_shape_holds_over_the_suite() {
    let lim_accel = LimCamAccelerator::paper_chip();
    let heap_accel = HeapAccelerator::paper_chip();
    let lim_chip = ChipPowerModel::paper_lim();
    let heap_chip = ChipPowerModel::paper_heap();

    let mut speedups = Vec::new();
    for bench in fig6_suite(SuiteScale::Small) {
        let m = &bench.matrix;
        let oracle = spgemm(m, m).unwrap();
        let lim = lim_accel.multiply(m, m).unwrap();
        let heap = heap_accel.multiply(m, m).unwrap();

        // Correctness: both chips compute the exact product.
        assert!(
            lim.product.approx_eq(&oracle, 1e-9),
            "{}: LiM product wrong",
            bench.name
        );
        assert!(
            heap.product.approx_eq(&oracle, 1e-9),
            "{}: heap product wrong",
            bench.name
        );
        assert_eq!(lim.stats.multiplies, heap.stats.multiplies);

        let cmp = ChipComparison::new(&lim_chip, lim.stats.cycles, &heap_chip, heap.stats.cycles);
        // LiM wins on every benchmark despite its 0.65x clock.
        assert!(
            cmp.speedup() > 1.0,
            "{}: speedup {}",
            bench.name,
            cmp.speedup()
        );
        // Energy saving exceeds speedup by the power ratio.
        assert!(
            cmp.energy_saving() > cmp.speedup(),
            "{}: energy {} vs speedup {}",
            bench.name,
            cmp.energy_saving(),
            cmp.speedup()
        );
        speedups.push((bench.name, cmp.speedup()));
    }

    // The spread spans well over an order of magnitude (paper: 7-250x).
    let min = speedups
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let max = speedups.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
    assert!(
        max / min > 10.0,
        "speedup spread {min:.1}x..{max:.1}x too narrow: {speedups:?}"
    );
    assert!(min > 2.0, "weakest benchmark {min:.1}x (paper min 7x)");
    assert!(max > 50.0, "strongest benchmark {max:.1}x (paper max 250x)");
}

#[test]
fn merge_width_drives_the_advantage() {
    // Rank benchmarks by max column width and by speedup: wide-merge
    // benchmarks must sit at the top of the speedup order.
    let lim_accel = LimCamAccelerator::paper_chip();
    let heap_accel = HeapAccelerator::paper_chip();
    let suite = fig6_suite(SuiteScale::Small);
    let mut rows: Vec<(usize, f64)> = suite
        .iter()
        .map(|b| {
            let lim = lim_accel.multiply(&b.matrix, &b.matrix).unwrap();
            let heap = heap_accel.multiply(&b.matrix, &b.matrix).unwrap();
            (
                b.stats().max_col_nnz,
                heap.stats.cycles as f64 / lim.stats.cycles as f64,
            )
        })
        .collect();
    rows.sort_by_key(|a| a.0);
    // The widest-merge benchmark beats the narrowest by a wide margin.
    let narrow = rows.first().unwrap().1;
    let wide = rows.last().unwrap().1;
    assert!(
        wide > 3.0 * narrow,
        "wide {wide:.1} vs narrow {narrow:.1}"
    );
}

#[test]
fn frequency_penalty_is_fixed_but_latency_still_wins() {
    // Paper: "Although the maximum frequency of the LiM chip is 35%
    // slower … completion time of benchmarks are 7x to 250x faster."
    let lim_chip = ChipPowerModel::paper_lim();
    let heap_chip = ChipPowerModel::paper_heap();
    let freq_ratio = lim_chip.fmax.value() / heap_chip.fmax.value();
    assert!((freq_ratio - 0.655).abs() < 0.01);

    let bench = &fig6_suite(SuiteScale::Small)[2]; // er_d8
    let m = &bench.matrix;
    let lim = LimCamAccelerator::paper_chip().multiply(m, m).unwrap();
    let heap = HeapAccelerator::paper_chip().multiply(m, m).unwrap();
    let cmp = ChipComparison::new(&lim_chip, lim.stats.cycles, &heap_chip, heap.stats.cycles);
    assert!(cmp.speedup() > 1.0);
}
