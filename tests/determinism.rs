//! Seed-stability tests: the reproducibility contract behind every
//! seeded experiment in the repo (Table 1 bounds, Fig. 4b/4c
//! configurations, Fig. 6 sweeps).
//!
//! Each test runs a seeded generator twice with the same seed and
//! asserts byte-identical output (via the textual Matrix Market
//! serialization or exact structural equality), then re-runs with a
//! different seed and asserts the output actually changes — guarding
//! against both nondeterminism and seeds that are silently ignored.

use lim::chip::SiliconEmulation;
use lim_brick::BrickLibrary;
use lim_physical::floorplan::{Floorplan, FloorplanOptions};
use lim_physical::flow::{FlowOptions, PhysicalSynthesis};
use lim_physical::place::{place, PlaceEffort};
use lim_rtl::generators::decoder;
use lim_spgemm::gen::MatrixGen;
use lim_spgemm::io::write_mtx;
use lim_tech::Technology;
use lim_testkit::TestRng;

/// Serializes a generated matrix so comparisons are byte-for-byte.
fn mtx(t: lim_spgemm::matrix::Triplets) -> String {
    write_mtx(&t.to_csc())
}

/// A named, seeded generator whose output is compared byte-for-byte.
type SeededCase = (&'static str, Box<dyn Fn(u64) -> String>);

#[test]
fn matrix_generators_are_seed_stable() {
    let cases: [SeededCase; 5] = [
        ("erdos_renyi", Box::new(|s| mtx(MatrixGen::erdos_renyi(128, 6.0, s)))),
        ("rmat", Box::new(|s| mtx(MatrixGen::rmat(128, 1024, 0.57, 0.19, 0.19, s)))),
        ("banded", Box::new(|s| mtx(MatrixGen::banded(96, 3, s)))),
        ("block_diagonal", Box::new(|s| mtx(MatrixGen::block_diagonal(64, 8, 0.6, s)))),
        ("hub", Box::new(|s| mtx(MatrixGen::hub(128, 4.0, 2, 64, s)))),
    ];
    for (name, generate) in &cases {
        assert_eq!(
            generate(42),
            generate(42),
            "{name}: same seed must produce byte-identical matrices"
        );
        assert_ne!(
            generate(42),
            generate(43),
            "{name}: different seeds must produce different matrices"
        );
    }
}

#[test]
fn mesh_laplacian_is_fully_deterministic() {
    // No seed parameter at all: two runs must still agree exactly.
    assert_eq!(
        mtx(MatrixGen::mesh_laplacian(12)),
        mtx(MatrixGen::mesh_laplacian(12))
    );
}

#[test]
fn seeded_placement_is_seed_stable() {
    let tech = Technology::cmos65();
    // Large enough that the anneal actually beats the initial ordered
    // placement and the seeded move sequence shows in the result (on
    // tiny designs every seed keeps the initial placement).
    let dec = decoder("dec", 5, 32, true).unwrap();
    let fp =
        Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default()).unwrap();
    let p1 = place(&tech, &dec, &fp, 11, PlaceEffort::default()).unwrap();
    let p2 = place(&tech, &dec, &fp, 11, PlaceEffort::default()).unwrap();
    assert_eq!(p1.cell_pos, p2.cell_pos);
    assert_eq!(p1.hpwl, p2.hpwl);
    assert!(
        (12..20).any(|seed| {
            let q = place(&tech, &dec, &fp, seed, PlaceEffort::default()).unwrap();
            q.cell_pos != p1.cell_pos || q.hpwl != p1.hpwl
        }),
        "different annealing seeds should explore different placements"
    );
}

#[test]
fn rtl_stimulus_generation_is_seed_stable() {
    let stimulus = |seed: u64| -> Vec<Vec<bool>> {
        let mut rng = TestRng::seed_from_u64(seed);
        (0..32)
            .map(|_| (0..17).map(|_| rng.gen::<bool>()).collect())
            .collect()
    };
    assert_eq!(stimulus(7), stimulus(7));
    assert_ne!(stimulus(7), stimulus(8));
}

#[test]
fn silicon_sampling_is_seed_stable() {
    let tech = Technology::cmos65();
    let lib = BrickLibrary::new();
    let dec = decoder("dec", 4, 16, true).unwrap();
    let rep = PhysicalSynthesis::new(&tech, &lib)
        .run(&dec, &FlowOptions::default())
        .unwrap();
    let a = SiliconEmulation::new(&tech, 3).sample(&rep, 16);
    let b = SiliconEmulation::new(&tech, 3).sample(&rep, 16);
    let c = SiliconEmulation::new(&tech, 4).sample(&rep, 16);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

/// Projects a DSE point onto its deterministic fields (`elapsed` is
/// wall-clock and legitimately varies run to run).
fn dse_fingerprint(points: &[lim::dse::DsePoint]) -> Vec<String> {
    points
        .iter()
        .map(|p| {
            format!(
                "{}|{}|{}|{}|{}|{:?}|{:?}|{:?}",
                p.label, p.words, p.bits, p.brick_words, p.stack, p.delay, p.energy, p.area
            )
        })
        .collect()
}

/// Serializes tests that mutate `LIM_PAR_THREADS`: the process
/// environment is global, so concurrent test threads would race.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn multistart_placement_is_byte_identical_across_worker_counts() {
    // The multi-start contract: per-start seeds are a fixed walk from
    // the caller's seed and the winner is the strictly lowest final
    // HPWL in seed order, so the placement is byte-identical whether
    // the starts run on 1 worker, 4 workers, or serially on the
    // calling thread (start completion order must never matter).
    let _env = ENV_LOCK.lock().unwrap();
    let tech = Technology::cmos65();
    let dec = decoder("dec", 5, 32, true).unwrap();
    let fp =
        Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default()).unwrap();
    let effort = PlaceEffort::starts(4);
    std::env::set_var(lim_par::ENV_THREADS, "1");
    let one = place(&tech, &dec, &fp, 11, effort).unwrap();
    std::env::set_var(lim_par::ENV_THREADS, "4");
    let four = place(&tech, &dec, &fp, 11, effort).unwrap();
    std::env::remove_var(lim_par::ENV_THREADS);
    let serial = place(&tech, &dec, &fp, 11, effort.serial()).unwrap();
    assert_eq!(one, four, "placement must not depend on the worker count");
    assert_eq!(one, serial, "parallel starts must match the serial path");
    assert_eq!(one.starts, 4);
    // Multi-start actually searches: it must never do worse than its
    // own first seed alone.
    let single = place(&tech, &dec, &fp, 11, PlaceEffort::default()).unwrap();
    assert!(one.hpwl <= single.hpwl);
}

#[test]
fn analytic_placement_is_byte_identical_across_worker_counts() {
    // The analytic seed's contract is stronger than the annealer's: the
    // B2B/CG solve is strictly serial by construction, so its output —
    // positions, iteration counts, legalization displacement — must be
    // byte-identical for any `LIM_PAR_THREADS`, not merely equal in
    // HPWL.
    let _env = ENV_LOCK.lock().unwrap();
    let tech = Technology::cmos65();
    let dec = decoder("dec", 6, 64, true).unwrap();
    let fp =
        Floorplan::build(&tech, &dec, &BrickLibrary::new(), &FloorplanOptions::default()).unwrap();
    std::env::set_var(lim_par::ENV_THREADS, "1");
    let one = lim_physical::analytic::analytic_place(&tech, &dec, &fp).unwrap();
    std::env::set_var(lim_par::ENV_THREADS, "4");
    let four = lim_physical::analytic::analytic_place(&tech, &dec, &fp).unwrap();
    std::env::remove_var(lim_par::ENV_THREADS);
    assert_eq!(one.cg_iters, four.cg_iters);
    assert_eq!(one.hpwl.to_bits(), four.hpwl.to_bits());
    assert_eq!(one.displacement.to_bits(), four.displacement.to_bits());
    assert_eq!(one.positions.len(), four.positions.len());
    for (a, b) in one.positions.iter().zip(four.positions.iter()) {
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
}

#[test]
fn parallel_results_are_independent_of_worker_count() {
    // par_map's output order contract: identical to serial for any
    // worker count, including when chunks are stolen.
    let items: Vec<u64> = (0..257).collect();
    let serial = lim_par::par_map_with_threads(1, items.clone(), |x| x * x + 1);
    let eight = lim_par::par_map_with_threads(8, items, |x| x * x + 1);
    assert_eq!(serial, eight);

    // The DSE sweep inherits that contract end to end: same points, in
    // the same order, whether the pool runs 1 worker or 8. The env var
    // is set and restored under `ENV_LOCK` to avoid cross-test races
    // on process environment.
    let _env = ENV_LOCK.lock().unwrap();
    let tech = Technology::cmos65();
    let sweep = || {
        lim::dse::explore(&tech, &[(128, 8), (128, 16)], &[16, 32]).expect("sweep must succeed")
    };
    std::env::set_var(lim_par::ENV_THREADS, "1");
    let one_worker = dse_fingerprint(&sweep());
    std::env::set_var(lim_par::ENV_THREADS, "8");
    let eight_workers = dse_fingerprint(&sweep());
    std::env::remove_var(lim_par::ENV_THREADS);
    assert_eq!(one_worker, eight_workers);
    assert_eq!(one_worker.len(), 4);
}

#[test]
fn testkit_rng_streams_are_independent_of_call_pattern() {
    // Drawing different value types must not desynchronize replays: the
    // stream is a pure function of the seed and the draw sequence.
    let mut a = TestRng::seed_from_u64(99);
    let trace_a = (
        a.gen_range(0usize..1000),
        a.gen_range(0.0f64..1.0),
        a.gen::<bool>(),
        a.next_u64(),
    );
    let mut b = TestRng::seed_from_u64(99);
    let trace_b = (
        b.gen_range(0usize..1000),
        b.gen_range(0.0f64..1.0),
        b.gen::<bool>(),
        b.next_u64(),
    );
    assert_eq!(trace_a, trace_b);
}
