//! Failure-injection tests: every layer's error paths return typed
//! errors (no panics) on malformed inputs.

use lim::sram::SramConfig;
use lim::LimError;
use lim_brick::{BitcellKind, BrickCompiler, BrickError, BrickSpec};
use lim_circuit::{Circuit, CircuitError, TransientSim};
use lim_physical::floorplan::{Floorplan, FloorplanOptions};
use lim_physical::PhysicalError;
use lim_rtl::generators::decoder;
use lim_rtl::{Netlist, RtlError, Simulator, StdCellKind};
use lim_spgemm::matrix::Triplets;
use lim_spgemm::SpgemmError;
use lim_tech::units::{Femtofarads, KiloOhms, Picoseconds, Volts};
use lim_tech::{TechError, Technology};

#[test]
fn invalid_technology_is_caught_before_compilation() {
    let mut tech = Technology::cmos65();
    tech.c_unit = Femtofarads::ZERO;
    assert!(matches!(
        tech.validate(),
        Err(TechError::NonPositiveParameter { name: "c_unit", .. })
    ));
    let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap();
    assert!(matches!(
        BrickCompiler::new(&tech).compile(&spec),
        Err(BrickError::Tech(_))
    ));
}

#[test]
fn circuit_rejects_degenerate_simulations() {
    let mut ckt = Circuit::new();
    let n = ckt.add_node("n");
    ckt.add_cap(n, Femtofarads::new(1.0));
    // Negative step.
    assert!(matches!(
        TransientSim::new(&ckt).run(Picoseconds::new(10.0), Picoseconds::new(-1.0)),
        Err(CircuitError::BadTimeStep { .. })
    ));
    // End before the first step.
    assert!(matches!(
        TransientSim::new(&ckt).run(Picoseconds::new(0.01), Picoseconds::new(0.1)),
        Err(CircuitError::BadTimeStep { .. })
    ));
    // Floating (capacitance-free, undriven) node is singular.
    let mut floating = Circuit::new();
    let _ = floating.add_node("float");
    assert!(matches!(
        TransientSim::new(&floating).run(Picoseconds::new(1.0), Picoseconds::new(0.1)),
        Err(CircuitError::SingularSystem { .. })
    ));
    let _ = Volts::ZERO;
    let _ = KiloOhms::new(1.0);
}

#[test]
fn netlist_validation_catches_structural_damage() {
    // Double driver.
    let mut n = Netlist::new("dd");
    let a = n.add_input("a");
    let x = n.add_gate(StdCellKind::Inv, 1.0, &[a], "x").unwrap();
    n.splice_cell(lim_rtl::ir::Cell {
        name: "dup".into(),
        kind: lim_rtl::CellKind::Gate {
            kind: StdCellKind::Buf,
            drive: 1.0,
        },
        inputs: vec![a],
        outputs: vec![x],
    });
    n.mark_output(x);
    assert!(matches!(n.validate(), Err(RtlError::MultipleDrivers { .. })));
    assert!(Simulator::new(&n).is_err());
}

#[test]
fn simulator_rejects_wrong_stimulus_width() {
    let dec = decoder("dec", 3, 8, true).unwrap();
    let mut sim = Simulator::new(&dec).unwrap();
    assert!(matches!(
        sim.eval(&[true, false]),
        Err(RtlError::WrongInputCount {
            expected: 4,
            got: 2
        })
    ));
}

#[test]
fn floorplan_rejects_impossible_utilization_and_missing_macros() {
    let tech = Technology::cmos65();
    let dec = decoder("dec", 3, 8, false).unwrap();
    for bad in [0.0, -0.5, 1.5] {
        let err = Floorplan::build(
            &tech,
            &dec,
            &lim_brick::BrickLibrary::new(),
            &FloorplanOptions {
                utilization: bad,
                ..FloorplanOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PhysicalError::BadOption { .. }), "{bad}");
    }
}

#[test]
fn sram_configs_reject_every_inconsistency() {
    for (w, b, p, bw) in [
        (0usize, 10usize, 1usize, 16usize), // zero words
        (128, 0, 1, 16),                    // zero bits
        (128, 10, 0, 16),                   // zero partitions
        (128, 10, 3, 16),                   // non-power-of-two banks
        (100, 10, 1, 16),                   // indivisible
        (96, 10, 2, 16),                    // 48 words/bank not a power of 2
    ] {
        assert!(
            matches!(SramConfig::new(w, b, p, bw), Err(LimError::BadConfig { .. })),
            "{w}x{b} p{p} bw{bw} should be rejected"
        );
    }
}

#[test]
fn spgemm_layers_reject_shape_mismatches() {
    let a = Triplets::new(4, 5).to_csc();
    let b = Triplets::new(4, 5).to_csc();
    assert!(matches!(
        lim_spgemm::reference::spgemm(&a, &b),
        Err(SpgemmError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        lim_spgemm::accel::lim_cam::LimCamAccelerator::paper_chip().multiply(&a, &b),
        Err(SpgemmError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        lim_spgemm::accel::heap::HeapAccelerator::paper_chip().multiply(&a, &b),
        Err(SpgemmError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        lim_spgemm::apps::spmv(lim_spgemm::apps::Chip::LimCam, &a, &[1.0; 2]),
        Err(SpgemmError::DimensionMismatch { .. })
    ));
}

#[test]
fn error_types_are_std_errors_with_sources() {
    fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
    assert_err::<TechError>();
    assert_err::<CircuitError>();
    assert_err::<BrickError>();
    assert_err::<RtlError>();
    assert_err::<PhysicalError>();
    assert_err::<LimError>();
    assert_err::<SpgemmError>();

    // Wrapped errors expose their sources through the chain.
    let mut tech = Technology::cmos65();
    tech.tau = Picoseconds::ZERO;
    let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10).unwrap();
    let err = BrickCompiler::new(&tech).compile(&spec).unwrap_err();
    let source = std::error::Error::source(&err).expect("brick error wraps tech error");
    assert!(source.to_string().contains("tau"));
}
