//! Placement-quality gates on the flow-bench netlists.
//!
//! The two SRAM designs the `physical_flow` bench runs (64x10 in two
//! partitions, 128x10 in four) are the quality contract for the
//! analytic-seeded placer: mapped netlists with none of the generated
//! decoders' built-in near-optimal ordering. Two gates:
//!
//! * seeded refinement (the default) must finish at or below the HPWL
//!   of a full cold anneal while spending a fraction of its moves, and
//! * the absolute HPWL must stay within the pinned bounds recorded when
//!   the analytic placer landed (tier1.sh runs this file as the
//!   quality gate, so a placer regression fails CI even if it is
//!   "consistently worse" on both arms).

use lim::sram::{self, SramConfig};
use lim_brick::BrickLibrary;
use lim_physical::floorplan::{Floorplan, FloorplanOptions};
use lim_physical::place::{place, PlaceEffort, Placement};
use lim_tech::Technology;

/// Pinned HPWL ceilings (µm) for the two flow-bench netlists, from the
/// cold-anneal values the repo shipped before analytic seeding (PR 4
/// bench report). The seeded placer currently lands ~9% under the cold
/// anneal, so these hold with wide margin; loosen only with a bench
/// report justifying the regression.
const HPWL_BOUND_SRAM_64X10_P2: f64 = 9605.0;
const HPWL_BOUND_SRAM_128X10_P4: f64 = 25402.0;

/// Builds the mapped netlist + floorplan of one flow-bench SRAM and
/// places it with flow-default seed/effort, seeded and cold.
fn place_flow_netlist(words: usize, bits: usize, parts: usize) -> (Placement, Placement) {
    let tech = Technology::cmos65();
    let mut lib = BrickLibrary::new();
    let config = SramConfig::new(words, bits, parts, 16).unwrap();
    let raw = sram::generate(&tech, &config, &mut lib).unwrap();
    let (netlist, _) = lim_rtl::mapping::optimize(&raw).unwrap();
    let fp = Floorplan::build(&tech, &netlist, &lib, &FloorplanOptions::default()).unwrap();
    let seeded = place(&tech, &netlist, &fp, 1, PlaceEffort::default()).unwrap();
    let cold = place(&tech, &netlist, &fp, 1, PlaceEffort::default().cold()).unwrap();
    (seeded, cold)
}

#[test]
fn seeded_refine_no_worse_than_cold_anneal_on_flow_netlists() {
    for (words, bits, parts) in [(64, 10, 2), (128, 10, 4)] {
        let (seeded, cold) = place_flow_netlist(words, bits, parts);
        assert!(seeded.seeded && seeded.analytic_iters > 0);
        assert!(!cold.seeded);
        assert!(
            seeded.hpwl <= cold.hpwl,
            "sram_{words}x{bits}_p{parts}: seeded {} worse than cold {}",
            seeded.hpwl,
            cold.hpwl
        );
        // The win must not come from secretly spending the cold budget.
        assert!(
            seeded.moves < cold.moves / 2,
            "sram_{words}x{bits}_p{parts}: refinement spent {} of {} cold moves",
            seeded.moves,
            cold.moves
        );
    }
}

#[test]
fn flow_netlist_hpwl_within_pinned_bounds() {
    for (words, bits, parts, bound) in [
        (64, 10, 2, HPWL_BOUND_SRAM_64X10_P2),
        (128, 10, 4, HPWL_BOUND_SRAM_128X10_P4),
    ] {
        let (seeded, _) = place_flow_netlist(words, bits, parts);
        assert!(
            seeded.hpwl <= bound,
            "sram_{words}x{bits}_p{parts}: HPWL {} exceeds pinned bound {bound}",
            seeded.hpwl
        );
    }
}
