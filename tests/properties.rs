//! Property-based tests spanning the workspace: accelerator correctness
//! on arbitrary matrices, LUT interpolation laws, logical-effort
//! monotonicity, unit algebra, and SRAM-config robustness. Runs on the
//! hermetic `lim-testkit` harness (seeded cases, failing-seed reporting).

use lim_brick::lut::Lut2D;
use lim_brick::BrickLibrary;
use lim_physical::floorplan::{Floorplan, FloorplanOptions};
use lim_physical::place::{place_audited, PlaceEffort};
use lim_rtl::{Netlist, Simulator, StdCellKind};
use lim_spgemm::accel::heap::HeapAccelerator;
use lim_spgemm::accel::lim_cam::LimCamAccelerator;
use lim_spgemm::matrix::Triplets;
use lim_spgemm::reference::spgemm;
use lim_tech::logical_effort::Path;
use lim_tech::units::{Femtofarads, Femtojoules, Megahertz, Picoseconds};
use lim_tech::Technology;
use lim_testkit::prop::check;
use lim_testkit::TestRng;

fn any_matrix(rng: &mut TestRng, n: usize, max_entries: usize) -> lim_spgemm::Csc {
    let entries = rng.gen_range(0usize..max_entries);
    let mut t = Triplets::new(n, n);
    for _ in 0..entries {
        let (r, c) = (rng.gen_range(0..n), rng.gen_range(0..n));
        t.push(r, c, rng.gen_range(0.1f64..2.0)).expect("in range");
    }
    t.to_csc()
}

/// Builds a random feed-forward netlist; every new gate's inputs draw
/// from already-existing nets, so the result is a DAG by construction.
fn any_netlist(rng: &mut TestRng, n_inputs: usize, max_gates: usize) -> Netlist {
    let kinds = [
        StdCellKind::Inv,
        StdCellKind::Buf,
        StdCellKind::Nand2,
        StdCellKind::Nor2,
        StdCellKind::And2,
        StdCellKind::Or2,
        StdCellKind::Xor2,
        StdCellKind::Aoi21,
        StdCellKind::Mux2,
    ];
    let gates = rng.gen_range(1usize..max_gates);
    let mut n = Netlist::new("fuzz");
    let mut nets: Vec<lim_rtl::NetId> = (0..n_inputs)
        .map(|i| n.add_input(format!("in{i}")))
        .collect();
    // A couple of constants spice up the folding paths.
    nets.push(n.add_tie(false, "t0"));
    nets.push(n.add_tie(true, "t1"));
    for g in 0..gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let ins: Vec<lim_rtl::NetId> = (0..kind.input_count())
            .map(|_| nets[rng.gen_range(0..nets.len())])
            .collect();
        let out = n
            .add_gate(kind, 1.0, &ins, format!("g{g}"))
            .expect("arity matches");
        nets.push(out);
    }
    // Observe the last few nets so the design isn't all dead.
    for &o in nets.iter().rev().take(4) {
        n.mark_output(o);
    }
    n
}

#[test]
fn incremental_placement_cost_matches_fresh_recompute() {
    // The annealer maintains its HPWL incrementally (per-net cached
    // perimeters updated under swap moves); `place_audited` compares
    // that running cost against a from-scratch recompute after every
    // accepted move and reports the worst relative divergence. On any
    // random netlist it must stay at floating-point-roundoff scale.
    let tech = Technology::cmos65();
    check("incremental_placement_cost_matches_fresh_recompute", |rng| {
        let netlist = any_netlist(rng, 6, 48);
        let fp = Floorplan::build(&tech, &netlist, &BrickLibrary::new(), &FloorplanOptions::default())
            .unwrap();
        let seed = rng.next_u64();
        let (placement, drift) =
            place_audited(&tech, &netlist, &fp, seed, PlaceEffort::default()).unwrap();
        assert!(
            drift <= 1e-9,
            "incremental cost drifted {drift:e} from a fresh recompute (seed {seed})"
        );
        assert!(placement.hpwl.is_finite() && placement.hpwl >= 0.0);
    });
}

#[test]
fn optimization_preserves_function_on_random_netlists() {
    check("optimization_preserves_function_on_random_netlists", |rng| {
        let netlist = any_netlist(rng, 5, 40);
        let stimuli: Vec<Vec<bool>> = (0..4)
            .map(|_| (0..5).map(|_| rng.gen::<bool>()).collect())
            .collect();
        let (optimized, _) = lim_rtl::mapping::optimize(&netlist).unwrap();
        let mut before = Simulator::new(&netlist).unwrap();
        let mut after = Simulator::new(&optimized).unwrap();
        for input in &stimuli {
            assert_eq!(before.eval(input).unwrap(), after.eval(input).unwrap());
        }
    });
}

#[test]
fn accelerators_match_oracle_on_arbitrary_matrices() {
    check("accelerators_match_oracle_on_arbitrary_matrices", |rng| {
        let a = any_matrix(rng, 24, 120);
        let b = any_matrix(rng, 24, 120);
        let oracle = spgemm(&a, &b).unwrap();
        let lim = LimCamAccelerator::paper_chip().multiply(&a, &b).unwrap();
        let heap = HeapAccelerator::paper_chip().multiply(&a, &b).unwrap();
        assert!(lim.product.approx_eq(&oracle, 1e-9));
        assert!(heap.product.approx_eq(&oracle, 1e-9));
        assert_eq!(lim.stats.multiplies, heap.stats.multiplies);
        // The LiM chip never does worse than serial one-per-product
        // plus bounded overheads.
        let bound = lim.stats.multiplies
            + 2 * lim.stats.new_entries
            + 32 * lim.stats.overflow_flushes
            + oracle.nnz() as u64
            + 64;
        assert!(lim.stats.cycles <= bound);
    });
}

#[test]
fn transpose_is_an_involution() {
    check("transpose_is_an_involution", |rng| {
        let a = any_matrix(rng, 16, 80);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().nnz(), a.nnz());
    });
}

#[test]
fn lut_bilinear_is_exact_on_planes() {
    check("lut_bilinear_is_exact_on_planes", |rng| {
        let kx = rng.gen_range(0.01f64..5.0);
        let ky = rng.gen_range(0.01f64..5.0);
        let c = rng.gen_range(-10.0f64..10.0);
        let x = rng.gen_range(0.0f64..100.0);
        let y = rng.gen_range(0.0f64..100.0);
        let lut = Lut2D::tabulate(
            vec![0.0, 30.0, 70.0, 100.0],
            vec![0.0, 25.0, 100.0],
            |px, py| kx * px + ky * py + c,
        )
        .unwrap();
        let expect = kx * x + ky * y + c;
        assert!((lut.lookup(x, y) - expect).abs() < 1e-9);
    });
}

#[test]
fn lut_lookup_is_bounded_by_grid_values() {
    check("lut_lookup_is_bounded_by_grid_values", |rng| {
        let vals: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0f64..100.0)).collect();
        let x = rng.gen_range(-10.0f64..40.0);
        let y = rng.gen_range(-10.0f64..40.0);
        let lut = Lut2D::new(vec![0.0, 10.0, 30.0], vec![0.0, 20.0], vals.clone()).unwrap();
        let v = lut.lookup(x, y);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    });
}

#[test]
fn logical_effort_delay_monotone_in_load() {
    check("logical_effort_delay_monotone_in_load", |rng| {
        let stages = rng.gen_range(1usize..5);
        let c1 = rng.gen_range(1.0f64..50.0);
        let extra = rng.gen_range(0.1f64..50.0);
        let tech = Technology::cmos65();
        let path = Path::inverter_chain(stages);
        let cin = Femtofarads::new(1.4);
        let d1 = path.min_delay(&tech, cin, Femtofarads::new(c1));
        let d2 = path.min_delay(&tech, cin, Femtofarads::new(c1 + extra));
        assert!(d2 > d1);
    });
}

#[test]
fn unit_algebra_roundtrips() {
    check("unit_algebra_roundtrips", |rng| {
        let e_fj = rng.gen_range(1.0f64..1e9);
        let f_mhz = rng.gen_range(1.0f64..5000.0);
        let e = Femtojoules::new(e_fj);
        let f = Megahertz::new(f_mhz);
        let p = e.average_power(f);
        let back = p.energy_per_cycle(f);
        assert!((back.value() - e.value()).abs() / e.value() < 1e-12);

        let t = Picoseconds::new(1e6 / f_mhz);
        assert!((t.to_frequency().value() - f_mhz).abs() / f_mhz < 1e-12);
    });
}

#[test]
fn estimator_monotone_in_stack() {
    check("estimator_monotone_in_stack", |rng| {
        let stack = rng.gen_range(1usize..16);
        let tech = Technology::cmos65();
        let brick = lim_brick::BrickCompiler::new(&tech)
            .compile(&lim_brick::BrickSpec::new(lim_brick::BitcellKind::Sram8T, 16, 10).unwrap())
            .unwrap();
        let a = brick.estimate_bank(stack).unwrap();
        let b = brick.estimate_bank(stack + 1).unwrap();
        assert!(b.read_delay >= a.read_delay);
        assert!(b.read_energy > a.read_energy);
        assert!(b.area > a.area);
    });
}

#[test]
fn pareto_front_members_are_not_dominated() {
    check("pareto_front_members_are_not_dominated", |rng| {
        // Build a synthetic DSE population from seeds and check the
        // front invariant.
        let n_seeds = rng.gen_range(3usize..8);
        let seeds: Vec<u64> = (0..n_seeds).map(|_| rng.gen_range(0u64..1000)).collect();
        let tech = Technology::cmos65();
        let depths: Vec<usize> = vec![16, 32];
        let mems: Vec<(usize, usize)> = seeds
            .iter()
            .map(|s| (64 << (s % 2), 8 + (s % 3) as usize * 4))
            .collect();
        let points = lim::dse::explore(&tech, &mems, &depths).unwrap();
        let front = lim::dse::pareto_front(&points);
        assert!(!front.is_empty());
        for &i in &front {
            for (j, q) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let p = &points[i];
                let dominates = q.delay.value() <= p.delay.value()
                    && q.energy.value() <= p.energy.value()
                    && q.area.value() <= p.area.value()
                    && (q.delay.value() < p.delay.value()
                        || q.energy.value() < p.energy.value()
                        || q.area.value() < p.area.value());
                assert!(!dominates);
            }
        }
    });
}

/// A random behavioral memory design inside the inferable RTL subset:
/// power-of-two depth, random word width, optionally split into two
/// byte-enable lanes. Returns the source plus (words, bits, lanes).
fn any_mem_source(rng: &mut TestRng) -> (String, usize, usize, usize) {
    let words = [8usize, 16, 32][rng.gen_range(0usize..3)];
    let bits = rng.gen_range(2usize..=12);
    let abits = words.trailing_zeros() as usize;
    let split = rng.gen_bool(0.5).then(|| rng.gen_range(1..bits));
    let lanes = if split.is_some() { 2 } else { 1 };
    let we_decl = if lanes == 2 {
        "input wire [1:0] we".to_owned()
    } else {
        "input wire we".to_owned()
    };
    let writes = match split {
        Some(s) => format!(
            "    if (we[0]) mem[waddr][{lo}:0] <= din[{lo}:0];\n\
             \x20   if (we[1]) mem[waddr][{hi}:{s}] <= din[{hi}:{s}];\n",
            lo = s - 1,
            hi = bits - 1,
        ),
        None => "    if (we)\n      mem[waddr] <= din;\n".to_owned(),
    };
    let src = format!(
        "module fuzzmem (\n\
         \x20 input wire clk,\n\
         \x20 {we_decl},\n\
         \x20 input wire [{a}:0] waddr,\n\
         \x20 input wire [{a}:0] raddr,\n\
         \x20 input wire [{b}:0] din,\n\
         \x20 output reg [{b}:0] dout\n\
         );\n\
         \x20 reg [{b}:0] mem [{d}:0];\n\
         \x20 always @(posedge clk) begin\n\
         {writes}\
         \x20   dout <= mem[raddr];\n\
         \x20 end\n\
         endmodule\n",
        a = abits - 1,
        b = bits - 1,
        d = words - 1,
    );
    (src, words, bits, lanes)
}

#[test]
fn rtl_infer_roundtrip_is_cycle_exact() {
    use lim_rtl::smartmem::{lower, MemLowering};
    use std::collections::BTreeMap;

    check("rtl_infer_roundtrip_is_cycle_exact", |rng| {
        let (src, words, bits, lanes) = any_mem_source(rng);
        let module = lim_rtl::parse(&src).expect("generated source is in the subset");
        let inference = lim_rtl::infer::infer(&module);
        assert!(
            inference.rejected.is_empty(),
            "generated design rejected: {:?}\n{src}",
            inference.rejected
        );
        assert_eq!(inference.memories.len(), 1);
        let mem = &inference.memories[0];
        assert_eq!((mem.words, mem.bits, mem.lanes().len()), (words, bits, lanes));

        // Any depth divisor is a valid decomposition for lowering; the
        // cycle behavior must not depend on which one DSE would pick.
        let brick_words = (words >> rng.gen_range(0usize..3)).max(2);
        let stack = words / brick_words;
        let plan = MemLowering {
            brick_words,
            entry_names: mem
                .lanes()
                .iter()
                .map(|l| format!("brick_8t_{brick_words}_{}_x{stack}", l.width()))
                .collect(),
        };
        let plans: BTreeMap<String, MemLowering> =
            [(mem.name.clone(), plan)].into_iter().collect();
        let netlist = lower(&module, &inference, &plans).expect("lowering succeeds");

        let mut tb = lim_rtl::SmartMemTestbench::new(&netlist, &module, &inference).unwrap();
        let mut gold = lim_rtl::BehavInterp::new(&module).unwrap();
        for cycle in 0..16 {
            let inputs: BTreeMap<String, u64> = [
                ("we".to_owned(), rng.gen_range(0u64..(1 << lanes))),
                ("waddr".to_owned(), rng.gen_range(0u64..words as u64)),
                ("raddr".to_owned(), rng.gen_range(0u64..words as u64)),
                ("din".to_owned(), rng.gen_range(0u64..(1 << bits))),
            ]
            .into_iter()
            .collect();
            let got = tb.cycle(&inputs).unwrap();
            let want = gold.step(&inputs);
            assert_eq!(
                got, want,
                "cycle {cycle} diverged on {inputs:?}\n{src}"
            );
        }
    });
}

#[test]
fn rtl_parser_survives_hostile_input() {
    check("rtl_parser_survives_hostile_input", |rng| {
        let input = match rng.gen_range(0usize..4) {
            // Raw character soup, heavy on Verilog punctuation.
            0 => {
                let palette = [
                    'm', 'o', 'd', 'u', 'l', 'e', 'r', 'g', 'b', 'i', 'n', '(', ')', '[', ']',
                    ':', ';', ',', '@', '.', '<', '=', '/', '*', '0', '9', '_', ' ', '\n',
                    '\u{0}', 'é',
                ];
                (0..rng.gen_range(0usize..96))
                    .map(|_| palette[rng.gen_range(0..palette.len())])
                    .collect()
            }
            // Valid designs truncated mid-flight.
            1 => {
                let (full, ..) = any_mem_source(rng);
                let cut = rng.gen_range(0..=full.len());
                full.chars().take(cut).collect()
            }
            // `if` nesting far past the parser's recursion bound.
            2 => format!(
                "module m (input clk, input a, output reg q);\n\
                 always @(posedge clk) {}q <= a;\nendmodule",
                "if (a) ".repeat(rng.gen_range(1usize..512))
            ),
            // Valid designs with one random character garbled.
            _ => {
                let (mut text, ..) = any_mem_source(rng);
                let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
                let at = boundaries[rng.gen_range(0..boundaries.len())];
                let garble = ['\\', '"', ']', 'x', '\u{7}', '<'][rng.gen_range(0usize..6)];
                let tail: String = text[at..].chars().skip(1).collect();
                text.truncate(at);
                text.push(garble);
                text.push_str(&tail);
                text
            }
        };
        // The property: parsing must return, never panic or overflow,
        // and every diagnostic must carry a real source position.
        if let Err(e) = lim_rtl::parse(&input) {
            assert!(e.line >= 1, "{e}");
            assert!(e.col >= 1, "{e}");
            assert!(!e.msg.is_empty());
        }
    });
}

/// A random syntactically valid JSON document (bounded depth/width),
/// used as raw material for truncation and mutation below.
fn any_json_text(rng: &mut TestRng, depth: usize) -> String {
    let kind = if depth == 0 {
        rng.gen_range(0usize..4)
    } else {
        rng.gen_range(0usize..6)
    };
    match kind {
        0 => "null".into(),
        1 => if rng.gen_bool(0.5) { "true" } else { "false" }.into(),
        2 => format!("{:.3}", rng.gen_range(-1.0e6..1.0e6)),
        3 => {
            let palette = ['a', 'Z', '0', ' ', '"', '\\', '\n', '\u{1f}', 'µ', '汉'];
            let s: String = (0..rng.gen_range(0usize..12))
                .map(|_| palette[rng.gen_range(0..palette.len())])
                .collect();
            lim_obs::json::string(&s)
        }
        4 => {
            let items: Vec<String> = (0..rng.gen_range(0usize..4))
                .map(|_| any_json_text(rng, depth - 1))
                .collect();
            format!("[{}]", items.join(","))
        }
        _ => {
            let members: Vec<String> = (0..rng.gen_range(0usize..4))
                .map(|i| format!("\"k{i}\":{}", any_json_text(rng, depth - 1)))
                .collect();
            format!("{{{}}}", members.join(","))
        }
    }
}

#[test]
fn json_parser_survives_hostile_input() {
    check("json_parser_survives_hostile_input", |rng| {
        let input = match rng.gen_range(0usize..4) {
            // Raw character soup, heavy on JSON punctuation.
            0 => {
                let palette = [
                    '{', '}', '[', ']', '"', ':', ',', '\\', 'e', '-', '+', '.', '0', '9', 'n',
                    't', 'f', ' ', '\n', 'u', '\u{0}', 'é',
                ];
                (0..rng.gen_range(0usize..64))
                    .map(|_| palette[rng.gen_range(0..palette.len())])
                    .collect()
            }
            // Valid documents truncated mid-flight.
            1 => {
                let full = any_json_text(rng, 3);
                let cut = rng.gen_range(0..=full.len());
                full.chars().take(cut).collect()
            }
            // Nesting far past the parser's depth bound.
            2 => {
                let depth = rng.gen_range(1usize..4 * lim_obs::json::MAX_DEPTH);
                if rng.gen_bool(0.5) {
                    "[".repeat(depth)
                } else {
                    "{\"a\":".repeat(depth)
                }
            }
            // Valid documents with one random byte swapped in.
            _ => {
                let mut text = any_json_text(rng, 3);
                if !text.is_empty() {
                    let boundaries: Vec<usize> =
                        text.char_indices().map(|(i, _)| i).collect();
                    let at = boundaries[rng.gen_range(0..boundaries.len())];
                    let garble = ['\\', '"', '}', 'x', '\u{7}'][rng.gen_range(0usize..5)];
                    let tail: String = text[at..].chars().skip(1).collect();
                    text.truncate(at);
                    text.push(garble);
                    text.push_str(&tail);
                }
                text
            }
        };
        // The property: parsing must return, never panic or overflow.
        // Accepted documents must round-trip to a render fixed point.
        match lim_obs::json::Value::parse(&input) {
            Ok(v) => {
                let rendered = lim_obs::json::render(&v);
                let again = lim_obs::json::Value::parse(&rendered)
                    .expect("render output must re-parse");
                assert_eq!(lim_obs::json::render(&again), rendered);
            }
            Err(e) => {
                assert!(!e.to_string().is_empty());
            }
        }
    });
}
