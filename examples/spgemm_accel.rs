//! Run both SpGEMM accelerators on a generated graph matrix and compare
//! latency and energy — a single-benchmark slice of the paper's Fig. 6.
//!
//! Usage: `cargo run --release --example spgemm_accel [n] [avg_degree]`
//! (defaults: 512 nodes, degree 12).

use lim_repro::lim_spgemm::accel::heap::HeapAccelerator;
use lim_repro::lim_spgemm::accel::lim_cam::LimCamAccelerator;
use lim_repro::lim_spgemm::energy::{ChipComparison, ChipPowerModel};
use lim_repro::lim_spgemm::gen::{MatrixGen, MatrixStats};
use lim_repro::lim_spgemm::reference::spgemm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(512);
    let degree: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(12.0);

    let a = MatrixGen::erdos_renyi(n, degree, 7).to_csc();
    let stats = MatrixStats::of(&a);
    println!(
        "squaring a {}x{} graph matrix: {} nnz, max column {}",
        n, n, stats.nnz, stats.max_col_nnz
    );

    // Correctness first: both chips must produce the oracle's product.
    let oracle = spgemm(&a, &a)?;
    let lim = LimCamAccelerator::paper_chip().multiply(&a, &a)?;
    let heap = HeapAccelerator::paper_chip().multiply(&a, &a)?;
    assert!(lim.product.approx_eq(&oracle, 1e-9), "LiM product wrong");
    assert!(heap.product.approx_eq(&oracle, 1e-9), "heap product wrong");
    println!("both accelerators match the host oracle ({} result nnz)\n", oracle.nnz());

    println!(
        "LiM CAM chip : {:>10} cycles ({:.2} cycles/multiply, {} CAM flushes)",
        lim.stats.cycles,
        lim.stats.cycles_per_multiply(),
        lim.stats.overflow_flushes
    );
    println!(
        "heap baseline: {:>10} cycles ({:.2} cycles/multiply, {} shift cycles)",
        heap.stats.cycles,
        heap.stats.cycles_per_multiply(),
        heap.stats.shift_cycles
    );

    let cmp = ChipComparison::new(
        &ChipPowerModel::paper_lim(),
        lim.stats.cycles,
        &ChipPowerModel::paper_heap(),
        heap.stats.cycles,
    );
    println!(
        "\nat silicon operating points: {:.1} µs vs {:.1} µs -> {:.1}x faster, {:.1}x less energy",
        cmp.lim_latency_us,
        cmp.heap_latency_us,
        cmp.speedup(),
        cmp.energy_saving()
    );
    Ok(())
}
