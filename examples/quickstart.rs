//! Quickstart: compile a memory brick, inspect its generated library
//! model, build a small LiM SRAM and push it through physical synthesis.
//!
//! Run with `cargo run --release --example quickstart`.

use lim_repro::lim::flow::LimFlow;
use lim_repro::lim::sram::SramConfig;
use lim_repro::lim_brick::{BitcellKind, BrickCompiler, BrickSpec};
use lim_repro::lim_tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A technology and a brick: the paper's 16x10b 8T workhorse.
    let tech = Technology::cmos65();
    let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10)?;
    let brick = BrickCompiler::new(&tech).compile(&spec)?;
    println!("compiled {spec}:");
    println!(
        "  layout {:.1} x {:.1} µm ({:.0} µm², {:.0}% array efficiency)",
        brick.layout.width().value(),
        brick.layout.height().value(),
        brick.layout.area().value(),
        brick.layout.array_efficiency() * 100.0
    );

    // 2. The estimator: one bank of 4 stacked bricks.
    let est = brick.estimate_bank(4)?;
    println!(
        "  4x bank: read {:.0} ps, read energy {:.2} pJ, fmax {:.2} GHz",
        est.read_delay.value(),
        est.read_energy.to_picojoules().value(),
        est.max_frequency().to_gigahertz().value()
    );

    // 3. Validate the estimate against the golden RC transient reference.
    let cmp = lim_repro::lim_brick::golden::compare(&brick, 4)?;
    println!(
        "  vs golden: delay {:+.1}%, read energy {:+.1}%",
        cmp.delay_error() * 100.0,
        cmp.read_energy_error() * 100.0
    );

    // 4. Full LiM flow: a 64x10b SRAM as two partitions of 2x bricks.
    let mut flow = LimFlow::cmos65();
    let block = flow.synthesize_sram(&SramConfig::new(64, 10, 2, 16)?)?;
    println!("\nsynthesized {}:", block.name);
    println!(
        "  {} gates + {} brick macros, die {:.0} µm²",
        block.gate_count, block.macro_count, block.report.die_area.value()
    );
    println!(
        "  fmax {:.2} GHz, {:.1} mW total at fmax",
        block.report.fmax.to_gigahertz().value(),
        block.report.power.total().value()
    );
    println!(
        "  critical path: {}",
        block.report.timing.critical_path.join(" -> ")
    );
    Ok(())
}
