// 1024x16 single-port synchronous-read memory in the inferable subset:
// one clocked write port behind a write enable, one registered read
// port. `rtl.infer` turns this into a brick-backed smart memory and
// runs it through the full physical flow:
//
//   lim-client --addr HOST:PORT --method rtl.infer \
//     --source-file examples/smart_mem.v \
//     --params '{"brick_words":[16,32,64]}'
module smart_mem (
  input  wire clk,
  input  wire we,
  input  wire [9:0] waddr,
  input  wire [9:0] raddr,
  input  wire [15:0] din,
  output reg  [15:0] dout
);
  reg [15:0] mem [1023:0];
  always @(posedge clk) begin
    if (we)
      mem[waddr] <= din;
    dout <= mem[raddr];
  end
endmodule
