//! The §2.2 motivating example end to end: a parallel-access pixel
//! memory (m x n window per cycle) as a LiM smart memory with shared
//! customized decoders, versus the conventional m·n-bank ASIC approach.
//!
//! Run with `cargo run --release --example parallel_access`.

use lim_repro::lim::flow::LimFlow;
use lim_repro::lim::parallel_access::ParallelAccessConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ParallelAccessConfig::motion_estimation();
    println!(
        "parallel-access memory: {}x{} image, {}x{} window, {} bpp ({} banks)",
        cfg.image_rows,
        cfg.image_cols,
        cfg.window_rows,
        cfg.window_cols,
        cfg.pixel_bits,
        cfg.banks()
    );

    let mut flow = LimFlow::cmos65();
    let cmp = flow.compare_parallel_access(&cfg)?;

    let print = |label: &str, b: &lim_repro::lim::LimBlock| {
        println!(
            "  {label:13} {:5} gates, {:2} banks, die {:6.0} µm², fmax {:.2} GHz, {:.0} fJ/access",
            b.gate_count,
            b.macro_count,
            b.report.die_area.value(),
            b.report.fmax.to_gigahertz().value(),
            b.report.energy_per_cycle.value()
        );
    };
    println!();
    print("LiM shared:", &cmp.lim);
    print("conventional:", &cmp.conventional);
    println!(
        "\nLiM advantage: {:.2}x smaller die, {:.2}x less energy per window access",
        cmp.area_advantage(),
        cmp.energy_advantage()
    );
    println!("(paper §2.2: \"the same parallel access functionality can be handled");
    println!(" inside the memory block with significantly less power and area\")");
    Ok(())
}
