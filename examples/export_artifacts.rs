//! Exports the flow's side artifacts to `target/artifacts/`: the Liberty
//! library of generated bricks, an SVG of a placed SRAM, and a VCD of a
//! golden brick read — the files a downstream EDA user would pull out of
//! the flow.
//!
//! Run with `cargo run --release --example export_artifacts`.

use lim_repro::lim::sram::{self, SramConfig};
use lim_repro::lim_brick::{liberty, BitcellKind, BrickCompiler, BrickLibrary, BrickSpec};
use lim_repro::lim_circuit::{extract, vcd, TransientSim};
use lim_repro::lim_physical::floorplan::{Floorplan, FloorplanOptions};
use lim_repro::lim_physical::place::{place, PlaceEffort};
use lim_repro::lim_physical::svg;
use lim_repro::lim_tech::units::{Femtofarads, KiloOhms, Picoseconds};
use lim_repro::lim_tech::Technology;
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("target/artifacts");
    fs::create_dir_all(out)?;
    let tech = Technology::cmos65();

    // 1. Liberty library of a small brick family.
    let specs = [
        BrickSpec::new(BitcellKind::Sram8T, 16, 10)?,
        BrickSpec::new(BitcellKind::Cam, 16, 10)?,
    ];
    let lib = BrickLibrary::generate(&tech, &specs, &[1, 2, 4])?;
    let lib_text = liberty::emit_library("lim_bricks", &lib);
    fs::write(out.join("lim_bricks.lib"), &lib_text)?;
    println!(
        "wrote {} ({} cells, {} bytes)",
        out.join("lim_bricks.lib").display(),
        lib.len(),
        lib_text.len()
    );

    // 2. SVG of a placed 64x10 two-bank SRAM.
    let mut lib2 = BrickLibrary::new();
    let cfg = SramConfig::new(64, 10, 2, 16)?;
    let netlist = sram::generate(&tech, &cfg, &mut lib2)?;
    let fp = Floorplan::build(&tech, &netlist, &lib2, &FloorplanOptions::default())?;
    let pl = place(&tech, &netlist, &fp, 7, PlaceEffort::default())?;
    let svg_text = svg::render(&netlist, &fp, &pl);
    fs::write(out.join("sram_64x10.svg"), &svg_text)?;
    println!(
        "wrote {} ({:.0} x {:.0} µm die)",
        out.join("sram_64x10.svg").display(),
        fp.width.value(),
        fp.height.value()
    );

    // 3. VCD of a wordline/bitline read on an extracted ladder.
    let brick = BrickCompiler::new(&tech).compile(&specs[0])?;
    let rp = extract::read_path(extract::ReadPathSpec {
        wordline: extract::LadderSpec {
            taps: 10,
            r_segment: KiloOhms::new(0.001),
            c_segment: Femtofarads::new(0.28),
            c_tap: brick.cell().wl_cap_per_cell,
        },
        target_column: 9,
        bitline: extract::LadderSpec {
            taps: 16,
            r_segment: KiloOhms::new(0.0006),
            c_segment: Femtofarads::new(0.14),
            c_tap: brick.cell().bl_cap_per_cell,
        },
        target_row: 15,
        r_wl_driver: brick.wl_driver_resistance(),
        r_read_stack: brick.cell().read_stack_r,
        c_sense: Femtofarads::new(2.8),
        vdd: tech.vdd,
    });
    let dt = Picoseconds::new(0.1);
    let res = TransientSim::new(&rp.circuit).run(Picoseconds::new(400.0), dt)?;
    let nodes = [rp.wl_at_cell, rp.bl_at_cell, rp.sense];
    let vcd_text = vcd::dump_vcd(&rp.circuit, &res, &nodes, dt, 5);
    fs::write(out.join("brick_read.vcd"), &vcd_text)?;
    println!("wrote {}", out.join("brick_read.vcd").display());
    // Confirm the read actually happened in the dump.
    let final_sense = res.final_voltage(rp.sense);
    println!(
        "  (sense node discharged to {:.2} — the read completed)",
        final_sense
    );
    Ok(())
}
