//! Design-space exploration: sweep brick choices for a memory you
//! describe on the command line and print the pareto front.
//!
//! Usage: `cargo run --release --example sram_explorer [words] [bits]`
//! (defaults: 512 words x 16 bits).

use lim_repro::lim::dse::{explore, pareto_front};
use lim_repro::lim_tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let words: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(512);
    let bits: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(16);

    let tech = Technology::cmos65();
    let depths: Vec<usize> = [8usize, 16, 32, 64, 128, 256]
        .into_iter()
        .filter(|d| *d <= words && words.is_multiple_of(*d))
        .collect();
    if depths.is_empty() {
        return Err(format!("no brick depth divides {words} words").into());
    }

    println!("exploring {words}x{bits}b memories over brick depths {depths:?}\n");
    let points = explore(&tech, &[(words, bits)], &depths)?;
    let front = pareto_front(&points);

    for (i, p) in points.iter().enumerate() {
        println!(
            "{} {:28} {:7.0} ps {:8.2} pJ {:9.0} µm²",
            if front.contains(&i) { "*" } else { " " },
            p.label,
            p.delay.value(),
            p.energy.to_picojoules().value(),
            p.area.value()
        );
    }
    println!("\n* = pareto-optimal in (delay, energy, area)");
    Ok(())
}
