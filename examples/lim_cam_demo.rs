//! The CAM smart memory end to end: generate a horizontal CAM block
//! (paper Fig. 5), synthesize it, and contrast it against the plain SRAM
//! of the same capacity — the circuit-level trade the SpGEMM chip makes.
//!
//! Run with `cargo run --release --example lim_cam_demo`.

use lim_repro::lim::cam::CamConfig;
use lim_repro::lim::flow::LimFlow;
use lim_repro::lim::sram::SramConfig;
use lim_repro::lim_brick::{BitcellKind, BrickCompiler, BrickSpec};
use lim_repro::lim_tech::units::Megahertz;
use lim_repro::lim_tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos65();
    let cam_cfg = CamConfig::spgemm_paper();

    // Circuit level: the CAM brick vs the SRAM brick.
    let compiler = BrickCompiler::new(&tech);
    let cam = compiler
        .compile(&cam_cfg.cam_spec()?)?
        .estimate_bank(1)?;
    let sram = compiler
        .compile(&BrickSpec::new(BitcellKind::Sram8T, 16, 10)?)?
        .estimate_bank(1)?;
    let f = Megahertz::new(800.0);
    println!("16x10b bricks at 0.8 GHz:");
    println!(
        "  SRAM: {:5.1} µm², read {:.0} ps, read {:.2} mW",
        sram.area.value(),
        sram.read_delay.value(),
        sram.read_energy.average_power(f).value()
    );
    println!(
        "  CAM : {:5.1} µm² (+{:.0}%), read {:.0} ps (+{:.0}%), match {:.2} mW",
        cam.area.value(),
        (cam.area.value() / sram.area.value() - 1.0) * 100.0,
        cam.read_delay.value(),
        (cam.read_delay.value() / sram.read_delay.value() - 1.0) * 100.0,
        cam.match_energy.expect("CAM matches").average_power(f).value()
    );

    // Block level: a full horizontal CAM (CAM brick + priority decode)
    // versus a same-capacity LiM SRAM.
    let mut flow = LimFlow::cmos65();
    let cam_block = flow.synthesize_cam_block(&cam_cfg)?;
    let sram_block = flow.synthesize_sram(&SramConfig::new(16, 10, 1, 16)?)?;

    println!("\nsynthesized blocks:");
    println!(
        "  CAM block : {:4} gates, fmax {:.2} GHz, die {:.0} µm²",
        cam_block.gate_count,
        cam_block.report.fmax.to_gigahertz().value(),
        cam_block.report.die_area.value()
    );
    println!(
        "  SRAM block: {:4} gates, fmax {:.2} GHz, die {:.0} µm²",
        sram_block.gate_count,
        sram_block.report.fmax.to_gigahertz().value(),
        sram_block.report.die_area.value()
    );
    println!("\nthe CAM trades clock rate and area for single-cycle matching —");
    println!("the system-level win shows up in the SpGEMM benchmarks (fig6).");
    Ok(())
}
