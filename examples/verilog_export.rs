//! Emit the paper's Fig. 3 artifacts as Verilog text: the brick interface
//! stub, the 32x10b 1R1W SRAM built from two stacked bricks, and the
//! synthesized gate-level decoder.
//!
//! Run with `cargo run --release --example verilog_export`.

use lim_repro::lim_brick::verilog::{brick_module, stacked_sram_module};
use lim_repro::lim_brick::{BitcellKind, BrickSpec};
use lim_repro::lim_rtl::generators::decoder;
use lim_repro::lim_rtl::verilog::emit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10)?;

    println!("// ===== brick stub (paper Fig. 3, brick_16_10) =====");
    print!("{}", brick_module(&spec));

    println!("\n// ===== 32x10b 1R1W SRAM from two stacked bricks =====");
    print!("{}", stacked_sram_module(&spec, 2, "sram_32x10_1r1w"));

    println!("\n// ===== synthesized 5-to-32 decoder (gate level) =====");
    let dec = decoder("decoder_5to32", 5, 32, true)?;
    let text = emit(&dec);
    // The full decoder is long; print the interface and the first gates.
    for line in text.lines().take(46) {
        println!("{line}");
    }
    println!("  // ... {} cells total ...", dec.cell_count());
    println!("endmodule");
    Ok(())
}
