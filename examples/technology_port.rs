//! Technology porting (paper §6): the brick compiler is "technology
//! dependent … the underlying circuit methodology and circuit formulas
//! remain the same" — so moving nodes is a parameter swap. This example
//! compiles the same brick on the 65 nm and 28 nm models and compares.
//!
//! Run with `cargo run --release --example technology_port`.

use lim_repro::lim_brick::{BitcellKind, BrickCompiler, BrickSpec};
use lim_repro::lim_tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BrickSpec::new(BitcellKind::Sram8T, 16, 10)?;
    println!("porting {spec} across technology nodes:\n");
    println!(
        "{:<10} {:>9} {:>11} {:>12} {:>11}",
        "node", "FO4 [ps]", "read [ps]", "energy [fJ]", "area [µm²]"
    );

    for tech in [Technology::cmos65(), Technology::cmos28()] {
        let brick = BrickCompiler::new(&tech).compile(&spec)?;
        let est = brick.estimate_bank(4)?;
        println!(
            "{:<10} {:>9.1} {:>11.0} {:>12.1} {:>11.1}",
            tech.name,
            tech.fo4_delay().value(),
            est.read_delay.value(),
            est.read_energy.value(),
            est.area.value()
        );
    }
    println!("\nsame compiler, same formulas — only the characterized constants");
    println!("changed, which is the one-time porting cost §6 describes.");
    Ok(())
}
